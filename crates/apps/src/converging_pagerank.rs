//! Tolerance-converged PageRank (extension).
//!
//! The paper's PageRank (Figure 6) runs a fixed `ROUND` iterations. The
//! natural refinement — stop when no rank moves more than a tolerance —
//! needs a master-side global view, which the paper's conclusion files
//! under future work. Our `master_compute` hook provides it: each vertex
//! stores `(rank, previous rank)` and the master halts the run once the
//! largest absolute delta falls below the tolerance.

use ipregel::{aggregate, Context, MasterDecision, VertexProgram};
use ipregel_graph::VertexId;

/// Rank plus the previous superstep's rank, for delta tracking.
pub type RankPair = (f64, f64);

/// PageRank that stops at convergence instead of a fixed round count.
#[derive(Debug, Clone)]
pub struct ConvergingPageRank {
    /// Damping factor (0.85 in the paper).
    pub damping: f64,
    /// Stop once `max |rank - prev| < tolerance`.
    pub tolerance: f64,
    /// Hard cap, in case the tolerance is never met.
    pub max_rounds: usize,
}

impl ConvergingPageRank {
    /// Never halts vertex-side until the master stops it: bypass unsound.
    pub const BYPASS_COMPATIBLE: bool = false;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for ConvergingPageRank {
    type Value = RankPair;
    type Message = f64;

    fn initial_value(&self, _id: VertexId) -> RankPair {
        (0.0, 0.0)
    }

    fn compute<C: Context<Message = f64>>(&self, value: &mut RankPair, ctx: &mut C) {
        let n = ctx.num_vertices() as f64;
        let new_rank = if ctx.is_first_superstep() {
            1.0 / n
        } else {
            let mut sum = 0.0;
            while let Some(m) = ctx.next_message() {
                sum += m;
            }
            (1.0 - self.damping) / n + self.damping * sum
        };
        *value = (new_rank, value.0);
        let deg = ctx.out_degree();
        if deg > 0 {
            ctx.broadcast(new_rank / f64::from(deg));
        }
    }

    fn combine(old: &mut f64, new: f64) {
        *old += new;
    }

    fn master_compute(&self, superstep: usize, values: &[RankPair]) -> MasterDecision {
        if superstep + 1 >= self.max_rounds {
            return MasterDecision::Halt;
        }
        if superstep == 0 {
            return MasterDecision::Continue; // no previous rank yet
        }
        let max_delta = aggregate::aggregate(
            values,
            |&(rank, prev)| (rank - prev).abs(),
            f64::max,
        )
        .unwrap_or(0.0);
        if max_delta < self.tolerance {
            MasterDecision::Halt
        } else {
            MasterDecision::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn graph() -> ipregel_graph::Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 2), (1, 3)] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    fn pr(tolerance: f64, max_rounds: usize) -> ConvergingPageRank {
        ConvergingPageRank { damping: 0.85, tolerance, max_rounds }
    }

    #[test]
    fn converges_before_the_cap() {
        let g = graph();
        let out = run(
            &g,
            &pr(1e-10, 500),
            Version { combiner: CombinerKind::Broadcast, selection_bypass: false },
            &RunConfig::default(),
        );
        assert!(out.stats.num_supersteps() < 500, "should converge early");
        // Converged ranks ≈ long fixed-iteration ranks.
        let expected = reference::pagerank_power(&g, 200, 0.85);
        for slot in g.address_map().live_slots() {
            let got = out.values[slot as usize].0;
            assert!((got - expected[slot as usize]).abs() < 1e-8, "slot {slot}");
        }
    }

    #[test]
    fn loose_tolerance_stops_sooner_than_tight() {
        let g = graph();
        let v = Version { combiner: CombinerKind::Spinlock, selection_bypass: false };
        let loose = run(&g, &pr(1e-3, 500), v, &RunConfig::default());
        let tight = run(&g, &pr(1e-12, 500), v, &RunConfig::default());
        assert!(loose.stats.num_supersteps() < tight.stats.num_supersteps());
    }

    #[test]
    fn cap_is_respected_when_tolerance_is_unreachable() {
        let g = graph();
        let out = run(
            &g,
            &pr(0.0, 12),
            Version { combiner: CombinerKind::Mutex, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(out.stats.num_supersteps(), 12);
    }

    #[test]
    fn all_three_combiners_agree() {
        let g = graph();
        let reference = run(
            &g,
            &pr(1e-9, 300),
            Version { combiner: CombinerKind::Mutex, selection_bypass: false },
            &RunConfig::default(),
        );
        for combiner in [CombinerKind::Spinlock, CombinerKind::Broadcast] {
            let out = run(
                &g,
                &pr(1e-9, 300),
                Version { combiner, selection_bypass: false },
                &RunConfig::default(),
            );
            assert_eq!(out.stats.num_supersteps(), reference.stats.num_supersteps());
            for slot in g.address_map().live_slots() {
                let (a, b) = (out.values[slot as usize].0, reference.values[slot as usize].0);
                assert!((a - b).abs() < 1e-12);
            }
        }
    }
}
