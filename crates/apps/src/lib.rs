//! Vertex-centric applications for the iPregel reproduction.
//!
//! The paper evaluates three applications chosen as vertex-centric
//! standards (Section 7.1.4), each with a distinct active-vertex
//! evolution:
//!
//! * [`PageRank`] — all vertices active every superstep (pull-combiner
//!   sweet spot; selection bypass **not** applicable);
//! * [`Hashmin`] — all active, decreasing to none (connected components
//!   by min-label propagation);
//! * [`Sssp`] — one active vertex growing into a bell curve (unit
//!   weights, Figure 5), plus a weighted variant as an extension;
//! * [`Bfs`] — level computation, bypass-compatible (extension).
//!
//! Beyond the paper's three, the crate ships extension applications that
//! exercise the other combiner families and the master hook:
//! [`MaxValue`] (the original Pregel paper's example), [`DegreeCentrality`]
//! (sum combiner), [`KCore`] (peeling with reactivation),
//! [`MultiSourceReachability`] (bitmask OR combiner),
//! [`ConvergingPageRank`] (tolerance stop via `master_compute`),
//! [`PersonalizedPageRank`], [`WidestPath`] (max-min bottleneck),
//! [`Bipartiteness`] (odd-cycle witness), and the
//! [`pseudo_diameter`] double-sweep estimator.
//!
//! One modelling limitation worth knowing: the combiner contract (one
//! merged message per mailbox, §6.3) rules out algorithms that need the
//! full multiset of neighbour messages — e.g. most-frequent-label
//! propagation or neighbourhood-intersection triangle counting. Those
//! fit the queue-based `femtograph-sim` baseline engine instead.
//!
//! Every application is accompanied by a sequential reference
//! implementation in [`mod@reference`], used by the test suites to verify
//! every engine version produces identical results.

// This crate needs no unsafe; keep it that way (see docs/INTERNALS.md,
// "Safety model").
#![forbid(unsafe_code)]

pub mod bfs;
pub mod bipartite;
pub mod converging_pagerank;
pub mod degree;
pub mod diameter;
pub mod hashmin;
pub mod kcore;
pub mod maxvalue;
pub mod pagerank;
pub mod personalized_pagerank;
pub mod reachability;
pub mod reference;
pub mod sssp;
pub mod widest_path;

pub use bfs::Bfs;
pub use bipartite::Bipartiteness;
pub use converging_pagerank::ConvergingPageRank;
pub use degree::DegreeCentrality;
pub use diameter::{pseudo_diameter, try_pseudo_diameter, DiameterEstimate};
pub use hashmin::Hashmin;
pub use kcore::KCore;
pub use maxvalue::MaxValue;
pub use pagerank::PageRank;
pub use personalized_pagerank::PersonalizedPageRank;
pub use reachability::MultiSourceReachability;
pub use sssp::{Sssp, WeightedSssp};
pub use widest_path::WidestPath;
