//! Multi-source reachability with bitmask messages.
//!
//! Up to 64 source vertices are tracked at once: each vertex's value is
//! the set (one bit per source) of sources that reach it. Messages are
//! OR-combined bitmasks — a third combiner flavour (after min and sum)
//! exercising the engines, and a practical building block (landmark
//! labelling, regular path queries).
//!
//! Halts every superstep (bypass-compatible) and broadcasts only
//! (pull-compatible).

use ipregel::{Context, VertexProgram};
use ipregel_graph::VertexId;

/// Reachability from up to 64 sources.
#[derive(Debug, Clone)]
pub struct MultiSourceReachability {
    /// The tracked sources, at most 64 (bit `i` ↔ `sources[i]`).
    pub sources: Vec<VertexId>,
}

impl MultiSourceReachability {
    /// New query over `sources`.
    ///
    /// # Panics
    /// With more than 64 sources.
    pub fn new(sources: Vec<VertexId>) -> Self {
        assert!(sources.len() <= 64, "at most 64 sources per run");
        MultiSourceReachability { sources }
    }

    /// Bits assigned to `id` — every index holding it (the same vertex
    /// may be listed as several sources; each keeps its own bit).
    fn source_bit(&self, id: VertexId) -> u64 {
        self.sources
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == id)
            .fold(0u64, |mask, (i, _)| mask | (1u64 << i))
    }

    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for MultiSourceReachability {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, _id: VertexId) -> u64 {
        0
    }

    fn compute<C: Context<Message = u64>>(&self, value: &mut u64, ctx: &mut C) {
        let mut seen = *value | self.source_bit(ctx.id());
        while let Some(m) = ctx.next_message() {
            seen |= m;
        }
        if seen != *value || (ctx.is_first_superstep() && seen != 0) {
            *value = seen;
            ctx.broadcast(seen);
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u64, new: u64) {
        *old |= new;
    }
}

/// Oracle: per-slot bitmask via one BFS per source.
pub fn reachability_oracle(g: &ipregel_graph::Graph, sources: &[VertexId]) -> Vec<u64> {
    let mut mask = vec![0u64; g.num_slots()];
    for (i, &s) in sources.iter().enumerate() {
        let levels = crate::reference::bfs_levels(g, s);
        for (slot, &l) in levels.iter().enumerate() {
            if l != u32::MAX {
                mask[slot] |= 1 << i;
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn two_chains() -> ipregel_graph::Graph {
        // 0→1→2 and 3→4→2: vertex 2 reachable from both chains.
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for (u, v) in [(0, 1), (1, 2), (3, 4), (4, 2)] {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn masks_merge_at_confluences_on_all_versions() {
        let g = two_chains();
        let q = MultiSourceReachability::new(vec![0, 3]);
        for v in Version::paper_versions() {
            let out = run(&g, &q, v, &RunConfig::default());
            assert_eq!(*out.value_of(0), 0b01, "{}", v.label());
            assert_eq!(*out.value_of(3), 0b10);
            assert_eq!(*out.value_of(2), 0b11);
            assert_eq!(*out.value_of(1), 0b01);
            assert_eq!(*out.value_of(4), 0b10);
        }
    }

    #[test]
    fn matches_bfs_oracle() {
        let g = two_chains();
        let sources = vec![0, 3, 4];
        let q = MultiSourceReachability::new(sources.clone());
        let expected = reachability_oracle(&g, &sources);
        let out = run(
            &g,
            &q,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(out.values, expected);
    }

    #[test]
    fn no_sources_means_no_activity_after_superstep_zero() {
        let g = two_chains();
        let q = MultiSourceReachability::new(vec![]);
        let out = run(
            &g,
            &q,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        assert!(out.iter().all(|(_, &m)| m == 0));
        assert_eq!(out.stats.num_supersteps(), 1);
    }

    #[test]
    #[should_panic(expected = "at most 64 sources")]
    fn rejects_too_many_sources() {
        MultiSourceReachability::new((0..65).collect());
    }
}
