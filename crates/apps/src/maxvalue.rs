//! Maximum-value propagation — the canonical example from the original
//! Pregel paper (Malewicz et al., SIGMOD'10, Figure 2).
//!
//! Every vertex starts with an arbitrary value and repeatedly adopts the
//! largest value it has heard of; at fixpoint every vertex in a
//! communicating region holds the region's maximum. Structurally the
//! mirror image of Hashmin, so it doubles as a test that nothing in the
//! engines is accidentally min-specific.

use ipregel::{Context, VertexProgram};
use ipregel_graph::VertexId;

/// Deterministically scrambles a vertex id into its starting value, so
/// the maximum is not simply the largest id (splitmix64 finaliser).
pub fn scrambled(id: VertexId) -> u64 {
    let mut z = u64::from(id).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    // Clear the top bit so u64::MAX stays free for the lock-free
    // mailbox's sentinel.
    (z ^ (z >> 31)) & (u64::MAX >> 1)
}

/// Max-value propagation with scrambled initial values.
#[derive(Debug, Clone, Default)]
pub struct MaxValue;

impl MaxValue {
    /// Vertices halt every superstep: bypass-compatible.
    pub const BYPASS_COMPATIBLE: bool = true;
    /// Broadcast-only communication: pull-combiner compatible.
    pub const BROADCAST_ONLY: bool = true;
}

impl VertexProgram for MaxValue {
    type Value = u64;
    type Message = u64;

    fn initial_value(&self, id: VertexId) -> u64 {
        scrambled(id)
    }

    fn compute<C: Context<Message = u64>>(&self, value: &mut u64, ctx: &mut C) {
        let mut best = *value;
        while let Some(m) = ctx.next_message() {
            best = best.max(m);
        }
        if best > *value || ctx.is_first_superstep() {
            *value = best;
            ctx.broadcast(*value);
        }
        ctx.vote_to_halt();
    }

    fn combine(old: &mut u64, new: u64) {
        if new > *old {
            *old = new;
        }
    }
}

/// Sequential fixpoint oracle: `value(v)` = max scrambled value over all
/// vertices that can reach `v` (including `v`). Indexed by slot.
pub fn maxvalue_fixpoint(g: &ipregel_graph::Graph) -> Vec<u64> {
    let map = g.address_map();
    // Every slot gets its initial value — including desolate slots, which
    // the engines also initialise (and never touch again), so full-vector
    // comparisons line up.
    let mut value: Vec<u64> =
        (0..g.num_slots() as u32).map(|s| scrambled(map.id_of(s))).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for v in map.live_slots() {
            let x = value[v as usize];
            for &u in g.out_neighbors(v) {
                if x > value[u as usize] {
                    value[u as usize] = x;
                    changed = true;
                }
            }
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, run_packed, CombinerKind, RunConfig, Version};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn ring(n: u32) -> ipregel_graph::Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for i in 0..n {
            b.add_edge(i, (i + 1) % n);
        }
        b.build().unwrap()
    }

    #[test]
    fn ring_converges_to_global_max_on_all_versions() {
        let g = ring(17);
        let expected = (0..17).map(scrambled).max().unwrap();
        for v in Version::paper_versions() {
            let out = run(&g, &MaxValue, v, &RunConfig::default());
            for (_, &val) in out.iter() {
                assert_eq!(val, expected, "{}", v.label());
            }
        }
    }

    #[test]
    fn matches_fixpoint_on_a_dag() {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for (u, v) in [(0, 2), (1, 2), (2, 3), (4, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build().unwrap();
        let expected = maxvalue_fixpoint(&g);
        let out = run(
            &g,
            &MaxValue,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(out.values, expected);
    }

    #[test]
    fn lock_free_engine_supports_u64_messages() {
        let g = ring(9);
        let spin = run(
            &g,
            &MaxValue,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &RunConfig::default(),
        );
        let lf = run_packed(
            &g,
            &MaxValue,
            Version { combiner: CombinerKind::LockFree, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(spin.values, lf.values);
    }

    #[test]
    fn scrambled_keeps_sentinel_free() {
        for id in [0u32, 1, 2, u32::MAX / 2, u32::MAX] {
            assert_ne!(scrambled(id), u64::MAX);
            assert!(scrambled(id) <= u64::MAX >> 1);
        }
    }
}
