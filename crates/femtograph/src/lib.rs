//! # femtograph-sim — the naive in-memory shared-memory baseline
//!
//! Section 7.3 of the iPregel paper: "The existing in-memory shared
//! memory vertex-centric framework is FemtoGraph. Unfortunately, we have
//! not been able to observe correct results from this framework" — so
//! the paper could never run the one comparison that isolates its own
//! contributions from the architecture's advantages.
//!
//! This crate supplies that missing baseline: a *correct* shared-memory
//! vertex-centric engine built the way a framework looks **before**
//! iPregel's three optimisations are applied:
//!
//! * **no combiners** (§6) — every message is appended to a
//!   dynamically-resizable per-vertex inbox queue under a per-vertex
//!   mutex; `compute` pops them one by one;
//! * **hashmap addressing** (§5) — every delivery routes through an
//!   id → location hashmap instead of the identifier arithmetic;
//! * **full-scan selection** (§4) — every superstep checks every
//!   vertex's active flag and inbox.
//!
//! It runs the same [`VertexProgram`]s as `ipregel` (programs written
//! against the Figure 3/4 API don't know which engine hosts them), so
//! the bench suite can measure, per optimisation target, what the paper's
//! design buys — including the §6.3 memory story: this engine's inbox
//! queues grow with message volume where iPregel's mailboxes stay one
//! message wide.

use std::collections::HashMap;
use std::time::Instant;

use ipregel::sync::lockorder::{LockClass, OrderedMutex};

use ipregel::engine::{RunConfig, RunOutput};
use ipregel::metrics::{FootprintReport, RunStats, SuperstepStats};
use ipregel::program::{Context, MasterDecision, VertexProgram};
use ipregel::sync_cell::SharedSlice;
use ipregel_graph::csr::Weight;
use ipregel_graph::{Graph, HashAddressMap, VertexId, VertexIndex};
use ipregel_par::prelude::*;

/// Inbox queues rank above every engine-internal lock: vertex programs
/// enqueue from arbitrary compute contexts, so whatever the host engine
/// already holds must rank below.
const FEMTO_INBOX: LockClass = LockClass::new(90, "femtograph.inbox");

/// Run `program` on `graph` with the naive engine.
///
/// `config.selection_bypass` is ignored (this engine *is* the
/// conventional scan the bypass replaces); `threads` and
/// `max_supersteps` are honoured.
pub fn run_naive<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    config: &RunConfig,
) -> RunOutput<P::Value> {
    assert!(graph.has_out_edges(), "the naive engine routes sends through out-adjacency");
    match config.threads {
        None => run_naive_inner(graph, program, config),
        Some(t) => ipregel_par::ThreadPoolBuilder::new()
            .num_threads(t.max(1))
            .build()
            .expect("failed to build thread pool")
            .install(|| run_naive_inner(graph, program, config)),
    }
}

fn run_naive_inner<P: VertexProgram>(
    graph: &Graph,
    program: &P,
    config: &RunConfig,
) -> RunOutput<P::Value> {
    let map = *graph.address_map();
    let slots = graph.num_slots();

    // The §5 strawman: an explicit id → index hashmap on the hot path.
    let lookup = HashAddressMap::new(map.base(), map.num_vertices());

    let mut values: Vec<P::Value> =
        (0..slots as u32).map(|s| program.initial_value(map.id_of(s))).collect();
    let mut halted = vec![false; slots];
    // Dynamically-resizable inbox queues — exactly what §6.3 eliminates.
    let cur: Vec<OrderedMutex<Vec<P::Message>>> =
        (0..slots).map(|_| OrderedMutex::new(&FEMTO_INBOX, Vec::new())).collect();
    let next: Vec<OrderedMutex<Vec<P::Message>>> =
        (0..slots).map(|_| OrderedMutex::new(&FEMTO_INBOX, Vec::new())).collect();
    let mut bufs = (cur, next);

    let mut stats = RunStats::default();
    let mut peak_queued_messages = 0u64;
    let mut superstep = 0usize;

    loop {
        let t0 = Instant::now();
        let (cur, next) = (&bufs.0, &bufs.1);
        let (sent, active): (u64, u64) = {
            let values_view = SharedSlice::new(&mut values);
            let halted_view = SharedSlice::new(&mut halted);
            (0..slots as u32)
                .into_par_iter()
                .map(|v| {
                    if !map.is_live_slot(v) {
                        return (0, 0);
                    }
                    // Full-scan selection: check flag and inbox of every
                    // vertex, every superstep.
                    let inbox: Vec<P::Message> = std::mem::take(
                        // lock-order(femtograph.inbox)
                        &mut cur[v as usize].lock().expect("inbox poisoned"),
                    );
                    // SAFETY: each live slot visited once per superstep.
                    let is_halted = unsafe { *halted_view.get(v as usize) };
                    if is_halted && inbox.is_empty() {
                        return (0, 0);
                    }
                    let mut ctx = NaiveCtx::<P> {
                        superstep,
                        graph,
                        lookup: &lookup,
                        v,
                        inbox: inbox.into_iter(),
                        next,
                        sent: 0,
                        halt_vote: false,
                    };
                    // SAFETY: each live slot visited once per superstep.
                    let mut value = unsafe { values_view.get_mut(v as usize) };
                    program.compute(&mut value, &mut ctx);
                    let halt = ctx.halt_vote;
                    let sent = ctx.sent;
                    // SAFETY: each live slot visited once per superstep.
                    unsafe { *halted_view.get_mut(v as usize) = halt };
                    (sent, 1)
                })
                .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
        };
        peak_queued_messages = peak_queued_messages.max(sent);
        stats.push(SuperstepStats {
            superstep,
            active,
            messages_sent: sent,
            duration: t0.elapsed(),
            // The naive engine's full scan is fused with compute; its
            // selection cost is part of `duration`, not separable.
            selection_duration: std::time::Duration::ZERO,
            // No chunked scheduling here — the par-iter plan splits on its own, so
            // there is no per-chunk plan to account.
            load: None,
        });
        std::mem::swap(&mut bufs.0, &mut bufs.1);

        if program.master_compute(superstep, &values) == MasterDecision::Halt {
            break;
        }
        superstep += 1;
        if let Some(cap) = config.max_supersteps {
            if superstep >= cap {
                break;
            }
        }
        let pending = sent > 0 || halted.iter().enumerate().any(|(s, &h)| !h && map.is_live_slot(s as u32));
        if !pending {
            break;
        }
    }

    // Peak queue capacity is the memory difference §6.3 is about: one
    // queued message per edge-delivery instead of one slot per vertex.
    let queue_bytes = bufs.0.iter().chain(bufs.1.iter()).map(|m| {
        // lock-order(femtograph.inbox)
        m.lock().expect("inbox poisoned").capacity() * std::mem::size_of::<P::Message>()
    }).sum::<usize>()
        + peak_queued_messages as usize * std::mem::size_of::<P::Message>();
    let footprint = FootprintReport {
        graph_bytes: graph.bytes(),
        values_bytes: slots * std::mem::size_of::<P::Value>(),
        mailbox_bytes: queue_bytes
            + 2 * slots * std::mem::size_of::<Vec<P::Message>>(),
        // Report the *underlying* mutex cost (the §6 comparison); the
        // lock-order detector's bookkeeping is diagnostic overhead, not
        // part of the engine's memory story.
        lock_bytes: 2 * slots * std::mem::size_of::<ipregel::sync::Mutex<()>>(),
        flags_bytes: slots + lookup.approx_bytes(),
        worklist_bytes: 0,
    };

    RunOutput::new(values, map, stats, footprint)
}

struct NaiveCtx<'a, P: VertexProgram> {
    superstep: usize,
    graph: &'a Graph,
    lookup: &'a HashAddressMap,
    v: VertexIndex,
    inbox: std::vec::IntoIter<P::Message>,
    next: &'a [OrderedMutex<Vec<P::Message>>],
    sent: u64,
    halt_vote: bool,
}

impl<P: VertexProgram> NaiveCtx<'_, P> {
    #[inline]
    fn enqueue(&mut self, slot: VertexIndex, msg: P::Message) {
        // lock-order(femtograph.inbox)
        self.next[slot as usize].lock().expect("inbox poisoned").push(msg);
        self.sent += 1;
    }
}

impl<P: VertexProgram> Context for NaiveCtx<'_, P> {
    type Message = P::Message;

    fn superstep(&self) -> usize {
        self.superstep
    }

    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn id(&self) -> VertexId {
        self.graph.id_of(self.v)
    }

    fn out_degree(&self) -> u32 {
        self.graph.out_degree(self.v)
    }

    fn next_message(&mut self) -> Option<P::Message> {
        self.inbox.next()
    }

    fn send(&mut self, to: VertexId, msg: P::Message) {
        // The hashmap layer, on every single delivery.
        let slot = self
            .lookup
            .index_of(to)
            .unwrap_or_else(|| panic!("send to unknown vertex id {to}"));
        // HashAddressMap indexes live vertices 0..n in id order; convert
        // to a slot via the real map for desolate layouts.
        let slot = self.graph.index_of(self.graph.address_map().base() + slot);
        self.enqueue(slot, msg);
    }

    fn broadcast(&mut self, msg: P::Message) {
        // Even broadcasts route each copy through the hashmap, as a
        // framework storing ids (not slots) in adjacency would.
        let neighbors: &[VertexIndex] = self.graph.out_neighbors(self.v);
        for &n in neighbors {
            let id = self.graph.id_of(n);
            let _ = self.lookup.index_of(id).expect("neighbor in lookup");
            self.enqueue(n, msg);
        }
    }

    fn vote_to_halt(&mut self) {
        self.halt_vote = true;
    }

    fn for_each_out_edge(&mut self, f: &mut dyn FnMut(VertexId, Weight)) {
        let neighbors = self.graph.out_neighbors(self.v);
        match self.graph.out_weights(self.v) {
            Some(ws) => {
                for (&n, &w) in neighbors.iter().zip(ws) {
                    f(self.graph.id_of(n), w);
                }
            }
            None => {
                for &n in neighbors {
                    f(self.graph.id_of(n), 1);
                }
            }
        }
    }
}

/// Sanity helper: does a `HashMap` really cost what
/// [`HashAddressMap::approx_bytes`] claims? Used by tests.
pub fn hashmap_entry_overhead() -> usize {
    std::mem::size_of::<HashMap<VertexId, VertexIndex>>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_apps::{Hashmin, PageRank, Sssp};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn graph(edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    #[test]
    fn naive_sssp_matches_ipregel() {
        let g = graph(&[(0, 1), (1, 2), (2, 3), (0, 3), (3, 4)]);
        let naive = run_naive(&g, &Sssp { source: 0 }, &RunConfig::default());
        let fast = run(
            &g,
            &Sssp { source: 0 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: true },
            &RunConfig::default(),
        );
        assert_eq!(naive.values, fast.values);
    }

    #[test]
    fn naive_hashmin_on_one_based_graph() {
        let g = graph(&[(1, 2), (2, 1), (3, 4), (4, 3)]);
        let naive = run_naive(&g, &Hashmin, &RunConfig::default());
        assert_eq!(*naive.value_of(2), 1);
        assert_eq!(*naive.value_of(4), 3);
    }

    #[test]
    fn multiple_messages_queue_up_without_combining() {
        // Two predecessors message one vertex: the naive inbox holds BOTH
        // (no combiner), and PageRank still sums them correctly.
        let g = graph(&[(0, 2), (1, 2), (2, 0), (2, 1)]);
        let naive = run_naive(&g, &PageRank { rounds: 6, damping: 0.85 }, &RunConfig::default());
        let fast = run(
            &g,
            &PageRank { rounds: 6, damping: 0.85 },
            Version { combiner: CombinerKind::Mutex, selection_bypass: false },
            &RunConfig::default(),
        );
        for slot in g.address_map().live_slots() {
            assert!((naive.values[slot as usize] - fast.values[slot as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn inbox_queues_cost_more_than_single_message_mailboxes() {
        if ipregel::sync::lockorder::armed() {
            // The lock-order detector's class pointers inflate the
            // combiner mailboxes; the §6.3 comparison is only
            // meaningful against the disarmed production layout.
            return;
        }
        // The §6.3 claim, measured: on a broadcast-heavy run the naive
        // engine's message memory exceeds iPregel's one-slot mailboxes.
        let n = 200u32;
        let edges: Vec<(u32, u32)> =
            (0..n).flat_map(|i| (0..8).map(move |k| (i, (i + k + 1) % n))).collect();
        let g = graph(&edges);
        let naive = run_naive(&g, &PageRank { rounds: 3, damping: 0.85 }, &RunConfig::default());
        let fast = run(
            &g,
            &PageRank { rounds: 3, damping: 0.85 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &RunConfig::default(),
        );
        assert!(
            naive.footprint.mailbox_bytes > 2 * fast.footprint.mailbox_bytes,
            "naive {} vs combiner {}",
            naive.footprint.mailbox_bytes,
            fast.footprint.mailbox_bytes
        );
    }

    #[test]
    fn threads_do_not_change_results() {
        let g = graph(&[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let a = run_naive(&g, &Hashmin, &RunConfig { threads: Some(1), ..RunConfig::default() });
        let b = run_naive(&g, &Hashmin, &RunConfig { threads: Some(4), ..RunConfig::default() });
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn superstep_cap_is_honoured() {
        let g = graph(&[(0, 1), (1, 0)]);
        let out = run_naive(
            &g,
            &PageRank { rounds: 1000, damping: 0.85 },
            &RunConfig { max_supersteps: Some(4), ..RunConfig::default() },
        );
        assert_eq!(out.stats.num_supersteps(), 4);
    }
}
