//! Property tests: the out-of-core engine agrees with the in-memory
//! sequential oracle on randomised graphs, and its IO accounting is
//! conservation-consistent (bytes read = 4 × adjacency entries touched).

use graphd_sim::{run_ooc, DiskModel, OocGraph};
use ipregel::{run_sequential, RunConfig};
use ipregel_apps::{Hashmin, Sssp};
use ipregel_graph::{Graph, GraphBuilder, NeighborMode};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u32..60, prop::collection::vec((0u32..60, 0u32..60), 1..250)).prop_map(|(n, raw)| {
        let mut b = GraphBuilder::new(NeighborMode::OutOnly).declare_id_range(0, n);
        let mut any = false;
        for (u, v) in raw {
            if u < n && v < n {
                b.add_edge(u, v);
                any = true;
            }
        }
        if !any {
            b.add_edge(0, n - 1);
        }
        b.build().expect("arb graph builds")
    })
}

fn spill(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("graphd-prop-{}-{tag}.edges", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn ooc_agrees_with_sequential_oracle(g in arb_graph(), tag in any::<u64>()) {
        let ooc = OocGraph::from_graph(&g, spill(tag)).unwrap();
        let cfg = RunConfig::default();

        let disk_sssp = run_ooc(&ooc, &Sssp { source: 0 }, &cfg, &DiskModel::default()).unwrap();
        let mem_sssp = run_sequential(&g, &Sssp { source: 0 }, &cfg);
        prop_assert_eq!(&disk_sssp.output.values, &mem_sssp.values);

        let disk_hm = run_ooc(&ooc, &Hashmin, &cfg, &DiskModel::default()).unwrap();
        let mem_hm = run_sequential(&g, &Hashmin, &cfg);
        prop_assert_eq!(&disk_hm.output.values, &mem_hm.values);
    }

    #[test]
    fn io_accounting_is_consistent(g in arb_graph(), tag in any::<u64>()) {
        let ooc = OocGraph::from_graph(&g, spill(tag.wrapping_add(1))).unwrap();
        let out = run_ooc(&ooc, &Hashmin, &RunConfig::default(), &DiskModel::default()).unwrap();
        // Superstep 0 touches every vertex: at least the full file once.
        prop_assert!(out.total_bytes_read() >= ooc.spilled_bytes());
        // Reads can cover at most the whole file per superstep... plus
        // coalescing gaps (≤ 4096 bytes per seek) — bound it loosely.
        for t in &out.io {
            prop_assert!(t.bytes_read <= ooc.spilled_bytes() + t.seeks * 4096);
            prop_assert!(t.seeks <= g.num_vertices() as u64);
            prop_assert!(t.disk_seconds >= 0.0);
        }
        prop_assert!((out.modelled_total_seconds - out.disk_seconds) >= 0.0);
    }
}
