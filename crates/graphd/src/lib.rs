//! # graphd-sim — an out-of-core vertex-centric engine
//!
//! Section 2 of the iPregel paper maps the architecture space: in-memory
//! distributed (Pregel+), out-of-core (GraphChi, FlashGraph, GraphD),
//! and in-memory shared memory (iPregel). The workspace already has the
//! first and last; this crate completes the triangle with a GraphD-style
//! out-of-core engine:
//!
//! * **vertex states stay in RAM** — values, single-message combined
//!   mailboxes (GraphD is Pregel-family and supports combiners), halted
//!   flags, and the per-vertex adjacency offsets;
//! * **edges live on disk** — the adjacency targets array is written to
//!   a file at build time and *streamed back every superstep* for the
//!   active vertices, with consecutive active ranges coalesced into
//!   sequential reads;
//! * **the disk is the bottleneck** — the engine executes for real (so
//!   results are bit-comparable with `ipregel`'s engines) while a
//!   [`DiskModel`] prices the observed read pattern (bytes / bandwidth +
//!   seeks × latency), because on a test machine the page cache would
//!   otherwise hide the cost that defines this architecture.
//!
//! The `bench` crate uses this to reproduce the paper's architectural
//! argument: the out-of-core engine can process graphs whose edges
//! exceed RAM (its resident footprint excludes edge storage entirely),
//! but pays a per-superstep IO tax that the in-memory shared-memory
//! design never pays.

use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ipregel::engine::{RunConfig, RunOutput};
use ipregel::mailbox::{Mailbox, SpinMailbox};
use ipregel::metrics::{FootprintReport, RunStats, SuperstepStats};
use ipregel::program::{Context, MasterDecision, VertexProgram};
use ipregel::sync_cell::SharedSlice;
use ipregel::trace::{self, TraceEvent};
use ipregel_graph::csr::Weight;
use ipregel_graph::{AddressMap, Graph, VertexId, VertexIndex};
use ipregel_par::prelude::*;

/// Bounded retry for transient edge-stream read failures
/// (`Interrupted` / `WouldBlock` / `TimedOut`): each failed attempt
/// sleeps `base_backoff × 2^(attempt-1)` before re-seeking, and after
/// `max_attempts` total attempts the error propagates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total read attempts before the error propagates (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub base_backoff: Duration,
}

ipregel::impl_to_json!(RetryPolicy { max_attempts, base_backoff });

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base_backoff: Duration::from_millis(1) }
    }
}

/// Disk performance constants used to price the observed IO pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Sequential read throughput, bytes/second (SATA-SSD-class default,
    /// 500 MB/s — the hardware tier of the paper's era).
    pub read_bandwidth: f64,
    /// Cost per non-contiguous read (seek / request overhead), seconds.
    pub seek_latency: f64,
    /// Transient-failure retry policy for edge-stream reads. Each retry
    /// re-seeks, so it is priced as an extra seek in the model.
    pub retry: RetryPolicy,
}

ipregel::impl_to_json!(DiskModel { read_bandwidth, seek_latency, retry });

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            read_bandwidth: 500e6,
            seek_latency: 100e-6,
            retry: RetryPolicy::default(),
        }
    }
}

/// Per-superstep IO observation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoTrace {
    /// Superstep number.
    pub superstep: usize,
    /// Bytes streamed from the edge file.
    pub bytes_read: u64,
    /// Non-contiguous read requests issued (retries re-seek, so each
    /// retry counts here too).
    pub seeks: u64,
    /// Reads that failed transiently and were retried.
    pub retries: u64,
    /// Modelled disk seconds for this superstep.
    pub disk_seconds: f64,
}

ipregel::impl_to_json!(IoTrace { superstep, bytes_read, seeks, retries, disk_seconds });

/// Result of an out-of-core run: the usual [`RunOutput`] plus IO
/// accounting and the modelled total (compute measured + disk modelled).
#[derive(Debug, Clone)]
pub struct OocOutput<V> {
    /// Values, stats and the RAM-resident footprint.
    pub output: RunOutput<V>,
    /// IO trace per superstep.
    pub io: Vec<IoTrace>,
    /// Total modelled disk seconds.
    pub disk_seconds: f64,
    /// Measured compute seconds + modelled disk seconds: the number to
    /// compare against the in-memory engines' measured runtime.
    pub modelled_total_seconds: f64,
}

impl<V> OocOutput<V> {
    /// Total bytes streamed across the run.
    pub fn total_bytes_read(&self) -> u64 {
        self.io.iter().map(|t| t.bytes_read).sum()
    }
}

/// A graph whose adjacency targets live in a disk file.
///
/// RAM keeps only the 8-byte offset per slot (plus the graph's
/// out-degree array); the 4-byte-per-edge targets are read back on
/// demand. Unweighted (the paper's applications treat their datasets as
/// unweighted; weighted out-of-core layouts would double the stream).
pub struct OocGraph {
    map: AddressMap,
    /// Byte offset of each slot's adjacency in the edge file (+1 entry).
    offsets: Vec<u64>,
    file: File,
    path: PathBuf,
    num_edges: u64,
    delete_on_drop: bool,
}

impl OocGraph {
    /// Spill `graph`'s out-adjacency to `path` and return the handle.
    ///
    /// The spill file is deleted when the handle drops; use
    /// [`OocGraph::persist`] + [`OocGraph::open`] to reuse it across
    /// processes.
    pub fn from_graph(graph: &Graph, path: impl AsRef<Path>) -> io::Result<OocGraph> {
        assert!(graph.has_out_edges(), "out-of-core spill needs out-adjacency");
        let path = path.as_ref().to_path_buf();
        let slots = graph.num_slots();
        let mut offsets = Vec::with_capacity(slots + 1);
        let mut file = File::create(&path)?;
        let mut cursor = 0u64;
        let mut buf: Vec<u8> = Vec::with_capacity(1 << 20);
        for v in 0..slots as u32 {
            offsets.push(cursor);
            for &t in graph.out_neighbors(v) {
                buf.extend_from_slice(&t.to_le_bytes());
                cursor += 4;
            }
            if buf.len() >= (1 << 20) - 4096 {
                file.write_all(&buf)?;
                buf.clear();
            }
        }
        file.write_all(&buf)?;
        offsets.push(cursor);
        file.sync_all()?;
        let file = File::open(&path)?;
        Ok(OocGraph {
            map: *graph.address_map(),
            offsets,
            file,
            path,
            num_edges: graph.num_edges(),
            delete_on_drop: true,
        })
    }

    /// Write a sidecar metadata file (`<path>.meta`) so the spill can be
    /// reopened later with [`OocGraph::open`], and keep the spill on
    /// disk when this handle drops.
    pub fn persist(&mut self) -> io::Result<()> {
        let mut meta: Vec<u8> = Vec::with_capacity(24 + self.offsets.len() * 8);
        meta.extend_from_slice(b"IPOC");
        meta.extend_from_slice(&1u32.to_le_bytes()); // version
        meta.extend_from_slice(&self.map.base().to_le_bytes());
        meta.extend_from_slice(&self.map.num_vertices().to_le_bytes());
        // The slot count disambiguates the addressing mode on reopen:
        // desolate layouts have slots = base + n, the others slots = n.
        meta.extend_from_slice(&(self.offsets.len() as u64 - 1).to_le_bytes());
        meta.extend_from_slice(&self.num_edges.to_le_bytes());
        for off in &self.offsets {
            meta.extend_from_slice(&off.to_le_bytes());
        }
        std::fs::write(self.path.with_extension("meta"), meta)?;
        self.delete_on_drop = false;
        Ok(())
    }

    /// Reopen a spill written by [`OocGraph::persist`]. The reopened
    /// handle never deletes the files on drop.
    pub fn open(path: impl AsRef<Path>) -> io::Result<OocGraph> {
        let path = path.as_ref().to_path_buf();
        let meta = std::fs::read(path.with_extension("meta"))?;
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        if meta.len() < 32 || &meta[0..4] != b"IPOC" {
            return Err(bad("bad spill metadata magic"));
        }
        let rd_u32 = |at: usize| u32::from_le_bytes(meta[at..at + 4].try_into().unwrap());
        let rd_u64 = |at: usize| u64::from_le_bytes(meta[at..at + 8].try_into().unwrap());
        if rd_u32(4) != 1 {
            return Err(bad("unsupported spill metadata version"));
        }
        let base = rd_u32(8);
        let n = rd_u32(12);
        let slots = rd_u64(16) as usize;
        let num_edges = rd_u64(24);
        let expected = 32 + (slots + 1) * 8;
        if meta.len() != expected {
            return Err(bad("truncated spill metadata"));
        }
        let offsets: Vec<u64> = (0..=slots).map(|i| rd_u64(32 + i * 8)).collect();
        let map = if slots == n as usize {
            if base == 0 {
                AddressMap::direct(n)
            } else {
                AddressMap::offset(base, n)
            }
        } else {
            AddressMap::desolate(base, n)
        };
        let file = File::open(&path)?;
        Ok(OocGraph { map, offsets, file, path, num_edges, delete_on_drop: false })
    }

    /// The identifier mapping.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.map.num_vertices() as usize
    }

    /// Number of edges (on disk).
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Out-degree of a slot, derivable from offsets without touching disk.
    #[inline]
    pub fn out_degree(&self, v: VertexIndex) -> u32 {
        ((self.offsets[v as usize + 1] - self.offsets[v as usize]) / 4) as u32
    }

    /// Path of the spill file.
    pub fn spill_path(&self) -> &Path {
        &self.path
    }

    /// RAM-resident bytes (offsets only — the out-of-core point).
    pub fn resident_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
    }

    /// Bytes on disk.
    pub fn spilled_bytes(&self) -> u64 {
        self.offsets.last().copied().unwrap_or(0)
    }
}

impl Drop for OocGraph {
    fn drop(&mut self) {
        if self.delete_on_drop {
            let _ = std::fs::remove_file(&self.path);
            let _ = std::fs::remove_file(self.path.with_extension("meta"));
        }
    }
}

/// A coalesced sequential read: `(file_offset, byte_len)`.
type ReadRun = (u64, u64);
/// An active vertex's slice of a run: `(run_index, offset_in_run, degree)`.
type VertexSlice = (u32, u32, u32);

/// Coalesce the active vertices' adjacency ranges into sequential read
/// runs (gap below `gap_threshold` bytes → one run), returning
/// [`ReadRun`]s plus one [`VertexSlice`] per active vertex.
fn plan_reads(
    ooc: &OocGraph,
    active: &[VertexIndex],
    gap_threshold: u64,
) -> (Vec<ReadRun>, Vec<VertexSlice>) {
    let mut runs: Vec<(u64, u64)> = Vec::new();
    let mut slices = Vec::with_capacity(active.len());
    for &v in active {
        let lo = ooc.offsets[v as usize];
        let hi = ooc.offsets[v as usize + 1];
        let deg = ((hi - lo) / 4) as u32;
        let extend = matches!(
            runs.last(),
            Some(&(start, len)) if lo >= start && lo <= start + len + gap_threshold
        );
        if extend {
            let run_idx = runs.len() - 1;
            let (start, len) = &mut runs[run_idx];
            *len = (hi - *start).max(*len);
            let in_run = (lo - *start) as u32;
            slices.push((run_idx as u32, in_run, deg));
        } else {
            runs.push((lo, hi - lo));
            slices.push(((runs.len() - 1) as u32, 0, deg));
        }
    }
    (runs, slices)
}

/// Is this error worth retrying? Transient kinds only — anything else
/// (truncation, permission, corruption) propagates immediately.
fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// One coalesced run read, with bounded retry on transient failure.
/// Every attempt seeks first (a failed `read_exact` leaves the cursor
/// and buffer in unspecified states, so each retry restarts the run
/// from scratch). Returns the number of retries performed.
fn read_run(file: &mut File, off: u64, buf: &mut [u8], retry: &RetryPolicy) -> io::Result<u64> {
    let mut retries = 0u64;
    loop {
        let result = (|| {
            #[cfg(feature = "chaos")]
            if ipregel::chaos::fires(ipregel::chaos::GRAPHD_READ, 0) {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "chaos: injected transient read failure",
                ));
            }
            file.seek(SeekFrom::Start(off))?;
            file.read_exact(buf)
        })();
        match result {
            Ok(()) => return Ok(retries),
            Err(e) if is_transient(e.kind()) && retries + 1 < u64::from(retry.max_attempts.max(1)) => {
                retries += 1;
                // Exponential backoff: base × 2^(retry − 1), capped so the
                // shift cannot overflow under absurd policies.
                let factor = 1u32 << (retries - 1).min(16) as u32;
                std::thread::sleep(retry.base_backoff.saturating_mul(factor));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Run `program` on an out-of-core graph with combined single-message
/// mailboxes and scan selection.
pub fn run_ooc<P: VertexProgram>(
    ooc: &OocGraph,
    program: &P,
    config: &RunConfig,
    disk: &DiskModel,
) -> io::Result<OocOutput<P::Value>> {
    let map = ooc.map;
    let slots = map.slots();

    let mut values: Vec<P::Value> =
        (0..slots as u32).map(|s| program.initial_value(map.id_of(s))).collect();
    let mut halted = vec![false; slots];
    let mut cur: Vec<SpinMailbox<P::Message>> = (0..slots).map(|_| SpinMailbox::empty()).collect();
    let mut next: Vec<SpinMailbox<P::Message>> = (0..slots).map(|_| SpinMailbox::empty()).collect();

    let footprint = FootprintReport {
        // Resident graph bytes: offsets only; the 4 B/edge targets live
        // on disk. This is the architecture's memory story.
        graph_bytes: ooc.resident_bytes(),
        values_bytes: slots * std::mem::size_of::<P::Value>(),
        mailbox_bytes: 2 * slots
            * (std::mem::size_of::<SpinMailbox<P::Message>>()
                - <SpinMailbox<P::Message> as Mailbox<P::Message>>::lock_bytes()),
        lock_bytes: 2 * slots * <SpinMailbox<P::Message> as Mailbox<P::Message>>::lock_bytes(),
        flags_bytes: slots,
        worklist_bytes: 0,
    };

    let mut stats = RunStats::default();
    let mut io_trace = Vec::new();
    let mut disk_seconds_total = 0.0f64;
    let mut active: Vec<VertexIndex> = map.live_slots().collect();
    let mut superstep = 0usize;
    let mut selection_duration = std::time::Duration::ZERO;
    let mut file = ooc.file.try_clone()?;
    let mut read_buf: Vec<u8> = Vec::new();

    let tracer = config.trace.as_deref();
    trace::emit_sync(tracer, || TraceEvent::RunBegin {
        engine: trace::EngineKind::Ooc,
        slots: slots as u64,
        threads: ipregel_par::current_num_threads() as u64,
    });

    loop {
        trace::emit_sync(tracer, || TraceEvent::SuperstepBegin { superstep: superstep as u64 });
        let t0 = Instant::now();
        // ---- IO phase: stream the active vertices' adjacency ----
        let (runs, slices) = plan_reads(ooc, &active, 4096);
        let mut run_starts = Vec::with_capacity(runs.len());
        read_buf.clear();
        let mut bytes_read = 0u64;
        let mut retries = 0u64;
        for &(off, len) in &runs {
            run_starts.push(read_buf.len());
            let at = read_buf.len();
            read_buf.resize(at + len as usize, 0);
            retries += read_run(&mut file, off, &mut read_buf[at..], &disk.retry)?;
            bytes_read += len;
        }
        // Every retry re-seeks, so the model prices it as a seek.
        let seeks = runs.len() as u64 + retries;
        let disk_seconds = bytes_read as f64 / disk.read_bandwidth + seeks as f64 * disk.seek_latency;
        disk_seconds_total += disk_seconds;

        // ---- compute phase ----
        let sent: u64 = {
            let values_view = SharedSlice::new(&mut values);
            let halted_view = SharedSlice::new(&mut halted);
            let next_ref: &[SpinMailbox<P::Message>] = &next;
            let cur_ref: &[SpinMailbox<P::Message>] = &cur;
            let read_buf = &read_buf;
            let run_starts = &run_starts;
            active
                .par_iter()
                .zip(slices.par_iter())
                .map(|(&v, &(run, off_in_run, deg))| {
                    let inbox = cur_ref[v as usize].take();
                    // SAFETY: active slots are distinct (scan order).
                    let is_halted = unsafe { *halted_view.get(v as usize) };
                    if is_halted && inbox.is_none() {
                        return 0;
                    }
                    let base = run_starts[run as usize] + off_in_run as usize;
                    let adjacency = &read_buf[base..base + deg as usize * 4];
                    let mut ctx = OocCtx::<P> {
                        superstep,
                        map: &map,
                        n: map.num_vertices() as usize,
                        v,
                        degree: deg,
                        adjacency,
                        inbox,
                        next: next_ref,
                        sent: 0,
                        halt_vote: false,
                    };
                    // SAFETY: active slots are distinct (scan order).
                    let mut value = unsafe { values_view.get_mut(v as usize) };
                    program.compute(&mut value, &mut ctx);
                    // SAFETY: active slots are distinct (scan order).
                    unsafe { *halted_view.get_mut(v as usize) = ctx.halt_vote };
                    ctx.sent
                })
                .sum()
        };

        stats.push(SuperstepStats {
            superstep,
            active: active.len() as u64,
            messages_sent: sent,
            duration: t0.elapsed() + selection_duration,
            selection_duration,
            // The out-of-core engine's parallelism is bounded by its I/O
            // runs, not a chunk plan; nothing to account here.
            load: None,
        });
        io_trace.push(IoTrace { superstep, bytes_read, seeks, retries, disk_seconds });
        // Close the superstep span: I/O detail first, then the mirror of
        // the SuperstepStats entry just pushed. No worker-side events
        // here (parallelism is bounded by I/O runs, not a chunk plan),
        // but the barrier still drives the periodic RSS sampler.
        trace::barrier(tracer, superstep);
        trace::emit_sync(tracer, || TraceEvent::Io {
            superstep: superstep as u64,
            bytes_read,
            seeks,
            retries,
        });
        trace::emit_sync(tracer, || {
            let s = stats.supersteps.last().expect("pushed above");
            TraceEvent::SuperstepEnd {
                superstep: s.superstep as u64,
                active: s.active,
                messages: s.messages_sent,
                duration_ns: trace::ns(s.duration),
                selection_ns: trace::ns(s.selection_duration),
                chunks: 0,
            }
        });
        std::mem::swap(&mut cur, &mut next);

        if program.master_compute(superstep, &values) == MasterDecision::Halt {
            break;
        }
        superstep += 1;
        if let Some(cap) = config.max_supersteps {
            if superstep >= cap {
                break;
            }
        }
        let sel_t0 = Instant::now();
        let halted_ref: &[bool] = &halted;
        let cur_ref: &[SpinMailbox<P::Message>] = &cur;
        active = (0..slots as u32)
            .into_par_iter()
            .filter(|&v| {
                map.is_live_slot(v) && (!halted_ref[v as usize] || cur_ref[v as usize].has_message())
            })
            .collect();
        selection_duration = sel_t0.elapsed();
        if active.is_empty() {
            break;
        }
    }

    trace::emit_sync(tracer, || TraceEvent::RunEnd {
        supersteps: stats.num_supersteps() as u64,
        messages: stats.total_messages(),
        duration_ns: trace::ns(stats.total_time),
    });
    let compute_seconds = stats.total_time.as_secs_f64();
    let output = RunOutput::new(values, map, stats, footprint);
    Ok(OocOutput {
        output,
        io: io_trace,
        disk_seconds: disk_seconds_total,
        modelled_total_seconds: compute_seconds + disk_seconds_total,
    })
}

/// Context over a disk-streamed adjacency slice.
struct OocCtx<'a, P: VertexProgram> {
    superstep: usize,
    map: &'a AddressMap,
    n: usize,
    v: VertexIndex,
    degree: u32,
    /// Little-endian u32 targets, streamed this superstep.
    adjacency: &'a [u8],
    inbox: Option<P::Message>,
    next: &'a [SpinMailbox<P::Message>],
    sent: u64,
    halt_vote: bool,
}

impl<P: VertexProgram> OocCtx<'_, P> {
    #[inline]
    fn target(&self, i: usize) -> VertexIndex {
        let b = &self.adjacency[i * 4..i * 4 + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }
}

impl<P: VertexProgram> Context for OocCtx<'_, P> {
    type Message = P::Message;

    fn superstep(&self) -> usize {
        self.superstep
    }

    fn num_vertices(&self) -> usize {
        self.n
    }

    fn id(&self) -> VertexId {
        self.map.id_of(self.v)
    }

    fn out_degree(&self) -> u32 {
        self.degree
    }

    fn next_message(&mut self) -> Option<P::Message> {
        self.inbox.take()
    }

    fn send(&mut self, to: VertexId, msg: P::Message) {
        assert!(self.map.contains(to), "send to unknown vertex id {to}");
        self.next[self.map.index_of(to) as usize].deliver(msg, P::combine);
        self.sent += 1;
    }

    fn broadcast(&mut self, msg: P::Message) {
        for i in 0..self.degree as usize {
            let t = self.target(i);
            self.next[t as usize].deliver(msg, P::combine);
        }
        self.sent += u64::from(self.degree);
    }

    fn vote_to_halt(&mut self) {
        self.halt_vote = true;
    }

    fn for_each_out_edge(&mut self, f: &mut dyn FnMut(VertexId, Weight)) {
        for i in 0..self.degree as usize {
            f(self.map.id_of(self.target(i)), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipregel::{run, CombinerKind, RunConfig, Version};
    use ipregel_apps::{Hashmin, PageRank, Sssp};
    use ipregel_graph::{GraphBuilder, NeighborMode};

    fn graph(edges: &[(u32, u32)]) -> Graph {
        let mut b = GraphBuilder::new(NeighborMode::Both);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build().unwrap()
    }

    fn temp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("graphd-test-{}-{name}.edges", std::process::id()))
    }

    #[test]
    fn spill_and_degrees() {
        let g = graph(&[(0, 1), (0, 2), (1, 2), (2, 0)]);
        let ooc = OocGraph::from_graph(&g, temp("spill")).unwrap();
        assert_eq!(ooc.out_degree(0), 2);
        assert_eq!(ooc.out_degree(1), 1);
        assert_eq!(ooc.spilled_bytes(), 16);
        assert!(ooc.resident_bytes() < g.bytes());
    }

    #[test]
    fn ooc_sssp_matches_in_memory() {
        let g = graph(&[(0, 1), (1, 2), (2, 3), (0, 3), (3, 4), (4, 0)]);
        let ooc = OocGraph::from_graph(&g, temp("sssp")).unwrap();
        let out = run_ooc(&ooc, &Sssp { source: 0 }, &RunConfig::default(), &DiskModel::default())
            .unwrap();
        let mem = run(
            &g,
            &Sssp { source: 0 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(out.output.values, mem.values);
        assert!(out.total_bytes_read() > 0);
        assert!(out.disk_seconds > 0.0);
    }

    #[test]
    fn ooc_hashmin_and_pagerank_match() {
        let edges: Vec<(u32, u32)> =
            (0..50u32).flat_map(|i| [(i, (i + 1) % 50), ((i + 1) % 50, i)]).collect();
        let g = graph(&edges);
        let ooc = OocGraph::from_graph(&g, temp("apps")).unwrap();

        let hm = run_ooc(&ooc, &Hashmin, &RunConfig::default(), &DiskModel::default()).unwrap();
        let hm_mem = run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Mutex, selection_bypass: false },
            &RunConfig::default(),
        );
        assert_eq!(hm.output.values, hm_mem.values);

        let pr = run_ooc(
            &ooc,
            &PageRank { rounds: 5, damping: 0.85 },
            &RunConfig::default(),
            &DiskModel::default(),
        )
        .unwrap();
        let pr_mem = run(
            &g,
            &PageRank { rounds: 5, damping: 0.85 },
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &RunConfig::default(),
        );
        for slot in g.address_map().live_slots() {
            assert!((pr.output.values[slot as usize] - pr_mem.values[slot as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn edges_do_not_count_against_resident_memory() {
        let edges: Vec<(u32, u32)> = (0..100u32).flat_map(|i| (0..20).map(move |k| (i, (i + k) % 100))).collect();
        let g = graph(&edges);
        let ooc = OocGraph::from_graph(&g, temp("mem")).unwrap();
        let out = run_ooc(
            &ooc,
            &Hashmin,
            &RunConfig { max_supersteps: Some(3), ..RunConfig::default() },
            &DiskModel::default(),
        )
        .unwrap();
        // The in-memory engine's graph bytes include 4 B/edge; the
        // out-of-core resident share must be edge-free.
        let mem = run(
            &g,
            &Hashmin,
            Version { combiner: CombinerKind::Spinlock, selection_bypass: false },
            &RunConfig { max_supersteps: Some(3), ..RunConfig::default() },
        );
        assert!(out.output.footprint.graph_bytes < mem.footprint.graph_bytes / 2);
    }

    #[test]
    fn sparse_frontiers_read_fewer_bytes() {
        // SSSP on a long path: early supersteps touch few vertices, so
        // the stream shrinks to the frontier's adjacency.
        let edges: Vec<(u32, u32)> = (0..500u32).map(|i| (i, i + 1)).collect();
        let g = graph(&edges);
        let ooc = OocGraph::from_graph(&g, temp("frontier")).unwrap();
        let out = run_ooc(&ooc, &Sssp { source: 0 }, &RunConfig::default(), &DiskModel::default())
            .unwrap();
        let first = out.io.first().unwrap().bytes_read;
        let later = out.io[5].bytes_read;
        assert!(later < first / 10, "frontier read {later} vs full scan {first}");
    }

    #[test]
    fn persist_and_reopen_round_trips() {
        let g = graph(&[(1, 2), (2, 3), (3, 1), (1, 3)]); // 1-based: desolate slot
        let path = temp("persist");
        {
            let mut ooc = OocGraph::from_graph(&g, &path).unwrap();
            ooc.persist().unwrap();
        } // dropped — files must survive
        let reopened = OocGraph::open(&path).unwrap();
        assert_eq!(reopened.num_vertices(), 3);
        assert_eq!(reopened.num_edges(), 4);
        assert_eq!(reopened.out_degree(reopened.address_map().index_of(1)), 2);
        let out = run_ooc(&reopened, &Hashmin, &RunConfig::default(), &DiskModel::default())
            .unwrap();
        assert_eq!(*out.output.value_of(2), 1);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("meta"));
    }

    #[test]
    fn open_rejects_garbage_metadata() {
        let path = temp("garbage");
        std::fs::write(&path, b"edges").unwrap();
        std::fs::write(path.with_extension("meta"), b"NOPE").unwrap();
        assert!(OocGraph::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("meta"));
    }

    #[test]
    fn transient_kinds_retry_others_propagate() {
        assert!(is_transient(io::ErrorKind::Interrupted));
        assert!(is_transient(io::ErrorKind::WouldBlock));
        assert!(is_transient(io::ErrorKind::TimedOut));
        assert!(!is_transient(io::ErrorKind::UnexpectedEof));
        assert!(!is_transient(io::ErrorKind::PermissionDenied));
    }

    #[test]
    fn healthy_reads_record_zero_retries() {
        let g = graph(&[(0, 1), (1, 2), (2, 0)]);
        let ooc = OocGraph::from_graph(&g, temp("retries")).unwrap();
        let out = run_ooc(&ooc, &Hashmin, &RunConfig::default(), &DiskModel::default()).unwrap();
        assert!(out.io.iter().all(|t| t.retries == 0));
        // With no retries, seeks are exactly the planned runs.
        assert!(out.io.iter().all(|t| t.seeks > 0));
    }

    #[test]
    fn read_plan_coalesces_contiguous_ranges() {
        let edges: Vec<(u32, u32)> = (0..20u32).map(|i| (i, (i + 1) % 20)).collect();
        let g = graph(&edges);
        let ooc = OocGraph::from_graph(&g, temp("plan")).unwrap();
        // All vertices active and contiguous → a single run.
        let active: Vec<u32> = (0..20).collect();
        let (runs, slices) = plan_reads(&ooc, &active, 4096);
        assert_eq!(runs.len(), 1);
        assert_eq!(slices.len(), 20);
        // Distant vertices with a huge gap threshold of 0 → two runs.
        let (runs, _) = plan_reads(&ooc, &[0, 19], 0);
        assert_eq!(runs.len(), 2);
    }
}
