//! The mini backend: deterministic sampling, no shrinking.
//!
//! See the crate docs for scope and the `real` feature for swapping in
//! the actual proptest. Everything here is `std`-only.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Failure carried out of a property body by the `prop_assert*!`
/// macros (the real crate's richer enum collapses to a message here).
pub type TestCaseError = String;

/// Per-suite configuration; only the fields the workspace sets exist.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
    /// Cap on consecutive `prop_filter` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate's default case count, so suites that tuned
        // `cases` down for expensive properties keep their intent.
        ProptestConfig { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Deterministic test RNG: a SplitMix64 stream seeded from the
/// property's module path, so failures reproduce run-to-run without
/// any persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a stable name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ 0x9e37_79b9_7f4a_7c15 }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    fn below(&mut self, bound: u128) -> u128 {
        debug_assert!(bound > 0);
        let wide = u128::from(self.next_u64()) << 64 | u128::from(self.next_u64());
        wide % bound
    }

    /// Uniform in `[0, 1)` with 53 significant bits.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A value generator. `sample` must be deterministic given the RNG
/// state; `Debug` on the value lets failures print their inputs.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Reject values failing `pred` (resampling, bounded by the
    /// config's reject cap per draw).
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, reason: reason.into(), pred }
    }

    /// Type-erase (used by `prop_oneof!` to mix arm types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe sampling, so strategies of one value type can be mixed.
pub trait DynStrategy {
    /// The generated type.
    type Value;
    /// Draw one value through the erased type.
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// An erased strategy (`Strategy::boxed`).
pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.as_ref().sample_dyn(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..ProptestConfig::default().max_global_rejects {
            let v = self.base.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected every draw: {}", self.reason);
    }
}

/// Weighted choice among erased strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` arms; weights must not all be 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof needs a positive total weight");
        Union { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(u128::from(self.total)) as u64;
        for (w, arm) in &self.arms {
            if pick < u64::from(*w) {
                return arm.sample_dyn(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights sum covered above");
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Debug + Sized {
    /// Draw from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform over *bit patterns*, as the real crate's `any::<f64>()`
    /// effectively explores: NaNs, infinities, and denormals included.
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    /// Bit-pattern uniform, like the `f64` impl.
    #[allow(clippy::cast_possible_truncation)]
    fn arbitrary(rng: &mut TestRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

/// Strategy drawing from a type's [`Arbitrary`] impl.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (mirrors `proptest::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Integer types usable as range-strategy endpoints.
pub trait RangeValue: Copy + Debug {
    /// Uniform in `[start, end)`; panics on an empty range.
    fn in_half_open(start: Self, end: Self, rng: &mut TestRng) -> Self;
    /// Uniform in `[start, end]`.
    fn in_inclusive(start: Self, end: Self, rng: &mut TestRng) -> Self;
}

macro_rules! range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn in_half_open(start: Self, end: Self, rng: &mut TestRng) -> Self {
                assert!(start < end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128;
                (start as i128 + rng.below(span) as i128) as $t
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn in_inclusive(start: Self, end: Self, rng: &mut TestRng) -> Self {
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeValue for f64 {
    fn in_half_open(start: Self, end: Self, rng: &mut TestRng) -> Self {
        assert!(start < end, "empty range strategy");
        start + rng.unit_f64() * (end - start)
    }
    fn in_inclusive(start: Self, end: Self, rng: &mut TestRng) -> Self {
        Self::in_half_open(start, end + (end - start) * f64::EPSILON, rng)
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::in_half_open(self.start, self.end, rng)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::in_inclusive(*self.start(), *self.end(), rng)
    }
}

macro_rules! strategy_tuple {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

strategy_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
}

/// A length specification for [`collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { start: r.start, end: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { start: *r.start(), end: r.end().saturating_add(1) }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { start: n, end: n + 1 }
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::fmt::Debug;

    /// Vectors of `elem` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = usize::in_half_open(self.size.start, self.size.end.max(self.size.start + 1), rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    use super::RangeValue;
}

/// Option strategies (mirrors `proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` half the time, `Some(inner)` otherwise — the real
    /// crate's default `Probability`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything a property suite imports (mirrors the real prelude).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

/// Define property tests. Mini semantics: `cases` deterministic samples
/// per property, no shrinking, discards pass.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let __strategy = ($($strat,)+);
            for __case in 0..__config.cases {
                let __values = $crate::Strategy::sample(&__strategy, &mut __rng);
                let __described = format!("{:?}", __values);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                    #[allow(unused_parens, irrefutable_let_patterns)]
                    let ($($pat,)+) = __values;
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest-mini: property {} failed at case #{}\n  inputs: {}\n  {}",
                        stringify!($name),
                        __case,
                        __described,
                        __msg
                    );
                }
            }
        }
    )*};
}

/// Weighted (`w => strat`) or uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, $crate::Strategy::boxed($strat))),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, $crate::Strategy::boxed($strat))),+])
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), __l, __r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(format!(
                        "{}\n  left: {:?}\n right: {:?}",
                        format!($($fmt)+), __l, __r
                    ));
                }
            }
        }
    };
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: {} != {}\n  both: {:?}",
                        stringify!($left), stringify!($right), __l
                    ));
                }
            }
        }
    };
}

/// Discard the current case unless `cond` holds (mini semantics: the
/// discarded case simply counts as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::sample(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
            let w = Strategy::sample(&(1u8..=255), &mut rng);
            assert!(w >= 1);
            let f = Strategy::sample(&(0.25f64..0.5), &mut rng);
            assert!((0.25..0.5).contains(&f));
            let n = Strategy::sample(&(1usize..2), &mut rng);
            assert_eq!(n, 1);
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = || {
            let mut rng = TestRng::deterministic("det");
            prop::collection::vec(any::<u64>(), 3..10).sample(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn oneof_hits_every_weighted_arm() {
        let strat = prop_oneof![
            4 => (0u32..1).prop_map(|_| "heavy"),
            1 => Just("light"),
        ];
        let mut rng = TestRng::deterministic("oneof");
        let mut heavy = 0;
        let mut light = 0;
        for _ in 0..500 {
            match strat.sample(&mut rng) {
                "heavy" => heavy += 1,
                _ => light += 1,
            }
        }
        assert!(heavy > light, "4:1 weighting should dominate: {heavy} vs {light}");
        assert!(light > 0, "the light arm must still fire");
    }

    #[test]
    fn filter_and_map_compose() {
        let strat = (0u32..100).prop_filter("even only", |v| v % 2 == 0).prop_map(|v| v + 1);
        let mut rng = TestRng::deterministic("fm");
        for _ in 0..200 {
            assert_eq!(strat.sample(&mut rng) % 2, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn the_macro_front_door_works(
            xs in prop::collection::vec(1u32..1000, 0..50),
            flag in any::<bool>(),
            opt in prop::option::of(0u8..10),
        ) {
            prop_assume!(xs.len() != 49);
            let total: u64 = xs.iter().map(|&x| u64::from(x)).sum();
            prop_assert!(total >= xs.len() as u64, "each element is at least 1");
            prop_assert_eq!(flag, flag);
            if let Some(v) = opt {
                prop_assert_ne!(v, 10);
            }
        }
    }
}
