//! Mini-proptest: an in-tree, dependency-free property-testing fallback.
//!
//! This crate is deliberately *named* `proptest` so the workspace's
//! property suites compile unchanged (`use proptest::prelude::*;`)
//! against either backend:
//!
//! - **default**: the mini implementation below — deterministic
//!   sampling from a SplitMix64 stream seeded by the test's module
//!   path, no network, no dependencies. It runs every property the
//!   suites define, but it does **not shrink** failures and it treats
//!   `prop_assume!` discards as passes rather than resampling.
//! - **`real` feature**: re-exports the actual proptest crate, injected
//!   by a networked build as `--extern proptest_real=…` (see
//!   Cargo.toml). Use it to minimise a failure the mini backend found.
//!
//! Only the strategy surface the workspace uses is implemented: integer
//! and float ranges (half-open and inclusive), `any` for the primitive
//! types, tuples up to seven strategies, `Just`, `prop_map`,
//! `prop_filter`, `prop_oneof!` (weighted and plain),
//! `collection::vec`, `option::of`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.

#![forbid(unsafe_code)]

#[cfg(feature = "real")]
pub use proptest_real::*;

#[cfg(not(feature = "real"))]
mod mini;
#[cfg(not(feature = "real"))]
pub use mini::*;
