//! `ipregel` — run vertex-centric applications from the command line.

// This crate needs no unsafe; keep it that way (see docs/INTERNALS.md,
// "Safety model").
#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ipregel_cli::run_cli(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", ipregel_cli::USAGE);
            ExitCode::FAILURE
        }
    }
}
