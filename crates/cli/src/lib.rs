//! Command-line front end for the iPregel reproduction.
//!
//! ```text
//! ipregel <command> --graph FILE [options]
//!
//! commands:
//!   pagerank     fixed-iteration PageRank          (--rounds, --damping)
//!   sssp         single-source shortest path       (--source, --weighted)
//!   bfs          breadth-first levels              (--source)
//!   components   connected components (Hashmin)
//!   maxvalue     max-value propagation (Pregel's canonical example)
//!   kcore        k-core membership                 (--k)
//!   widest       single-source widest path         (--source)
//!   ppr          personalised PageRank             (--source, --rounds, --damping)
//!   diameter     pseudo-diameter by double sweep   (--source)
//!   bipartite    two-colouring / odd-cycle check   (--source)
//!   stats        print graph statistics and exit
//!   validate     structural report (symmetry, loops, duplicates)
//!   convert      rewrite in another format         (--out, --out-format)
//!
//! options:
//!   --graph FILE            input path (required)
//!   --format FMT            edgelist | dimacs | konect | binary
//!                           (default: guessed from the extension)
//!   --combiner C            mutex | spinlock | broadcast  (default spinlock;
//!                           pagerank defaults to broadcast)
//!   --engine E              ipregel (default) | naive | ooc | seq —
//!                           naive is the FemtoGraph-style baseline, ooc
//!                           the out-of-core engine (spills to a temp
//!                           file, unweighted), seq the single-threaded
//!                           oracle; combiner/bypass apply to ipregel only
//!   --bypass                enable the selection bypass (Section 4)
//!   --schedule S            vertex | edge | adaptive — how supersteps are
//!                           cut into parallel chunks (default vertex;
//!                           edge balances by degree, for skewed graphs)
//!   --threads N             worker threads (default: all cores)
//!   --top K                 print the K most extreme results (default 10)
//!   --rounds N              PageRank iterations (default 30)
//!   --damping F             PageRank damping (default 0.85)
//!   --source ID             SSSP/BFS source vertex (default 2, as the paper)
//!   --weighted              SSSP uses edge weights (push combiners only)
//!   --k N                   k-core order (default 2)
//!   --out FILE              convert: output path
//!   --out-format FMT        convert: edgelist | dimacs | binary
//!   --checkpoint-dir DIR    write superstep checkpoints into DIR
//!                           (--engine ipregel only; see docs/INTERNALS.md)
//!   --checkpoint-every N    checkpoint cadence in supersteps (default 1)
//!   --resume                restore the newest valid checkpoint in
//!                           --checkpoint-dir before running
//!   --deadline SECS         abort cleanly (with partial stats) if the
//!                           run exceeds SECS seconds
//!   --trace-out FILE        write a structured JSONL trace of the run
//!                           (records events only when the crate is built
//!                           with `--features trace`; see docs/INTERNALS.md,
//!                           "Observability")
//!   --metrics-out FILE      write Prometheus text-format metrics derived
//!                           from the same trace
//! ```
//!
//! The library entry point [`run_cli`] returns the rendered output so the
//! whole surface is unit-testable without spawning processes.

// This crate needs no unsafe; keep it that way (see docs/INTERNALS.md,
// "Safety model").
#![forbid(unsafe_code)]

use std::fmt;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;

use std::sync::Arc;

use ipregel::recover::run_with_checkpoints;
use ipregel::trace::Tracer;
use ipregel::{
    try_run, try_run_sequential, CheckpointConfig, CombinerKind, Persist, RunConfig, RunError,
    RunOutput, Schedule, Version, VertexProgram,
};
use ipregel_apps::{Bfs, Hashmin, PageRank, Sssp, WeightedSssp};
use ipregel_graph::loaders::{load_dimacs_gr, load_edge_list, load_konect, read_binary};
use ipregel_graph::{Graph, GraphStats, NeighborMode};

/// Usage text shown on argument errors.
pub const USAGE: &str = "usage: ipregel \
<pagerank|sssp|bfs|components|maxvalue|kcore|widest|ppr|diameter|bipartite|stats|validate|convert> \
--graph FILE \
[--format edgelist|dimacs|konect|binary] [--combiner mutex|spinlock|broadcast] [--bypass] \
[--schedule vertex|edge|adaptive] \
[--threads N] [--top K] [--rounds N] [--damping F] [--source ID] [--weighted] [--k N] \
[--out FILE --out-format edgelist|dimacs|binary] \
[--checkpoint-dir DIR] [--checkpoint-every N] [--resume] [--deadline SECS] \
[--trace-out FILE] [--metrics-out FILE]";

/// CLI failure with a human-readable message.
#[derive(Debug, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Which engine executes the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineChoice {
    /// The optimised framework (combiner/bypass select the version).
    #[default]
    IPregel,
    /// The FemtoGraph-style naive shared-memory baseline.
    Naive,
    /// The out-of-core engine (edges spilled to a temp file).
    OutOfCore,
    /// The single-threaded differential oracle.
    Sequential,
}

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Subcommand name.
    pub command: String,
    /// Graph file path.
    pub graph: String,
    /// Input format (`None` = guess from extension).
    pub format: Option<String>,
    /// Combiner (`None` = per-command default).
    pub combiner: Option<CombinerKind>,
    /// Selection bypass toggle.
    pub bypass: bool,
    /// Superstep scheduling policy.
    pub schedule: Schedule,
    /// Thread count.
    pub threads: Option<usize>,
    /// Results to print.
    pub top: usize,
    /// PageRank iterations.
    pub rounds: usize,
    /// PageRank damping.
    pub damping: f64,
    /// SSSP/BFS source.
    pub source: u32,
    /// Weighted SSSP.
    pub weighted: bool,
    /// k-core order.
    pub k: u32,
    /// Convert: output path.
    pub out: Option<String>,
    /// Convert: output format.
    pub out_format: Option<String>,
    /// Executing engine.
    pub engine: EngineChoice,
    /// Checkpoint directory (`None` = no checkpointing).
    pub checkpoint_dir: Option<String>,
    /// Checkpoint cadence in supersteps.
    pub checkpoint_every: usize,
    /// Resume from the newest valid checkpoint before running.
    pub resume: bool,
    /// Cooperative wall-clock budget in seconds.
    pub deadline: Option<f64>,
    /// Write a JSONL superstep trace here (`None` = no trace).
    pub trace_out: Option<String>,
    /// Write Prometheus text-format metrics here (`None` = none).
    pub metrics_out: Option<String>,
}

/// Parse raw arguments into [`Options`].
pub fn parse_args(args: &[String]) -> Result<Options, CliError> {
    let mut it = args.iter();
    let command = match it.next() {
        Some(c) => c.clone(),
        None => return err("missing command"),
    };
    if !matches!(
        command.as_str(),
        "pagerank" | "sssp" | "bfs" | "components" | "maxvalue" | "kcore" | "widest" | "ppr"
            | "diameter" | "bipartite" | "stats" | "validate" | "convert"
    ) {
        return err(format!("unknown command {command:?}"));
    }
    let mut opts = Options {
        command,
        graph: String::new(),
        format: None,
        combiner: None,
        bypass: false,
        schedule: Schedule::default(),
        threads: None,
        top: 10,
        rounds: 30,
        damping: 0.85,
        source: 2,
        weighted: false,
        k: 2,
        out: None,
        out_format: None,
        engine: EngineChoice::default(),
        checkpoint_dir: None,
        checkpoint_every: 1,
        resume: false,
        deadline: None,
        trace_out: None,
        metrics_out: None,
    };
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().map(String::as_str).ok_or_else(|| CliError(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--graph" => opts.graph = value()?.to_string(),
            "--format" => opts.format = Some(value()?.to_string()),
            "--combiner" => {
                opts.combiner = Some(match value()? {
                    "mutex" => CombinerKind::Mutex,
                    "spinlock" => CombinerKind::Spinlock,
                    "broadcast" => CombinerKind::Broadcast,
                    other => return err(format!("unknown combiner {other:?}")),
                })
            }
            "--bypass" => opts.bypass = true,
            "--schedule" => opts.schedule = value()?.parse().map_err(CliError)?,
            "--threads" => {
                opts.threads =
                    Some(value()?.parse().map_err(|e| CliError(format!("bad --threads: {e}")))?)
            }
            "--top" => {
                opts.top = value()?.parse().map_err(|e| CliError(format!("bad --top: {e}")))?
            }
            "--rounds" => {
                opts.rounds = value()?.parse().map_err(|e| CliError(format!("bad --rounds: {e}")))?
            }
            "--damping" => {
                opts.damping =
                    value()?.parse().map_err(|e| CliError(format!("bad --damping: {e}")))?
            }
            "--source" => {
                opts.source = value()?.parse().map_err(|e| CliError(format!("bad --source: {e}")))?
            }
            "--weighted" => opts.weighted = true,
            "--k" => opts.k = value()?.parse().map_err(|e| CliError(format!("bad --k: {e}")))?,
            "--out" => opts.out = Some(value()?.to_string()),
            "--out-format" => opts.out_format = Some(value()?.to_string()),
            "--checkpoint-dir" => opts.checkpoint_dir = Some(value()?.to_string()),
            "--checkpoint-every" => {
                opts.checkpoint_every = value()?
                    .parse()
                    .map_err(|e| CliError(format!("bad --checkpoint-every: {e}")))?
            }
            "--resume" => opts.resume = true,
            "--deadline" => {
                let secs: f64 =
                    value()?.parse().map_err(|e| CliError(format!("bad --deadline: {e}")))?;
                if !secs.is_finite() || secs < 0.0 {
                    return err(format!("bad --deadline: {secs} is not a duration"));
                }
                opts.deadline = Some(secs);
            }
            "--trace-out" => opts.trace_out = Some(value()?.to_string()),
            "--metrics-out" => opts.metrics_out = Some(value()?.to_string()),
            "--engine" => {
                opts.engine = match value()? {
                    "ipregel" => EngineChoice::IPregel,
                    "naive" => EngineChoice::Naive,
                    "ooc" => EngineChoice::OutOfCore,
                    "seq" => EngineChoice::Sequential,
                    other => return err(format!("unknown engine {other:?}")),
                }
            }
            other => return err(format!("unknown flag {other:?}")),
        }
    }
    if opts.graph.is_empty() {
        return err("--graph is required");
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        return err("--resume needs --checkpoint-dir");
    }
    Ok(opts)
}

/// Guess the file format from the path extension.
pub fn guess_format(path: &str) -> &'static str {
    match Path::new(path).extension().and_then(|e| e.to_str()) {
        Some("gr") => "dimacs",
        Some("ipgb" | "bin") => "binary",
        Some("konect") => "konect",
        _ => "edgelist",
    }
}

fn load_graph(opts: &Options) -> Result<Graph, CliError> {
    let format = opts.format.clone().unwrap_or_else(|| guess_format(&opts.graph).to_string());
    // The pull combiner needs in-edges; keep both unless we know better.
    let mode = match opts.combiner {
        Some(CombinerKind::Broadcast) | None => NeighborMode::Both,
        _ => {
            if opts.bypass || !matches!(opts.command.as_str(), "pagerank") {
                NeighborMode::Both
            } else {
                NeighborMode::OutOnly
            }
        }
    };
    let file = File::open(&opts.graph)
        .map_err(|e| CliError(format!("cannot open {}: {e}", opts.graph)))?;
    let reader = BufReader::new(file);
    let g = match format.as_str() {
        "edgelist" => load_edge_list(reader, mode),
        "dimacs" => load_dimacs_gr(reader, mode),
        "konect" => load_konect(reader, mode),
        "binary" => read_binary(reader, mode),
        other => return err(format!("unknown format {other:?}")),
    };
    g.map_err(|e| CliError(format!("cannot parse {}: {e}", opts.graph)))
}

fn version_for(opts: &Options, default: CombinerKind) -> Version {
    Version { combiner: opts.combiner.unwrap_or(default), selection_bypass: opts.bypass }
}

fn run_cfg(opts: &Options, tracer: &Option<Arc<Tracer>>) -> RunConfig {
    RunConfig {
        threads: opts.threads,
        schedule: opts.schedule,
        deadline: opts.deadline.map(std::time::Duration::from_secs_f64),
        trace: tracer.clone(),
        ..RunConfig::default()
    }
}

fn run_error(e: RunError) -> CliError {
    CliError(format!("run failed: {e}"))
}

fn run_app<P: VertexProgram>(
    g: &Graph,
    p: &P,
    version: Version,
    opts: &Options,
    tracer: &Option<Arc<Tracer>>,
) -> Result<RunOutput<P::Value>, CliError> {
    let cfg = run_cfg(opts, tracer);
    match opts.engine {
        EngineChoice::IPregel => try_run(g, p, version, &cfg).map_err(run_error),
        EngineChoice::Sequential => try_run_sequential(g, p, &cfg).map_err(run_error),
        EngineChoice::Naive => {
            if opts.deadline.is_some() {
                return err("--deadline needs --engine ipregel or seq");
            }
            Ok(femtograph_sim::run_naive(g, p, &cfg))
        }
        EngineChoice::OutOfCore => {
            if opts.deadline.is_some() {
                return err("--deadline needs --engine ipregel or seq");
            }
            let spill = std::env::temp_dir().join(format!(
                "ipregel-cli-ooc-{}-{}.edges",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .map_or(0, |d| d.as_nanos() as u64)
            ));
            let ooc = graphd_sim::OocGraph::from_graph(g, &spill)
                .map_err(|e| CliError(format!("cannot spill edges to the temp directory: {e}")))?;
            Ok(graphd_sim::run_ooc(&ooc, p, &cfg, &graphd_sim::DiskModel::default())
                .map_err(|e| CliError(format!("out-of-core run failed: {e}")))?
                .output)
        }
    }
}

/// [`run_app`] for programs with persistable state: honours
/// `--checkpoint-dir` / `--checkpoint-every` / `--resume`.
fn run_app_ckpt<P>(
    g: &Graph,
    p: &P,
    version: Version,
    opts: &Options,
    tracer: &Option<Arc<Tracer>>,
) -> Result<RunOutput<P::Value>, CliError>
where
    P: VertexProgram,
    P::Value: Persist,
    P::Message: Persist,
{
    let Some(dir) = &opts.checkpoint_dir else {
        return run_app(g, p, version, opts, tracer);
    };
    if opts.engine != EngineChoice::IPregel {
        return err("--checkpoint-dir needs --engine ipregel");
    }
    let mut ckpt = CheckpointConfig::new(dir, opts.checkpoint_every);
    if opts.resume {
        ckpt = ckpt.resuming();
    }
    run_with_checkpoints(g, p, version, &run_cfg(opts, tracer), &ckpt).map_err(run_error)
}

fn summary<V>(out: &RunOutput<V>, version: Version) -> String {
    format!(
        "version: {}\nsupersteps: {}\nmessages: {}\nsuperstep time: {:.3}s\nframework bytes: {}\n",
        version.label(),
        out.stats.num_supersteps(),
        out.stats.total_messages(),
        out.stats.total_time.as_secs_f64(),
        out.footprint.total_bytes(),
    )
}

/// Execute the CLI and return its stdout text.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let opts = parse_args(args)?;
    if opts.engine == EngineChoice::OutOfCore && (opts.weighted || opts.command == "widest") {
        return err("the out-of-core engine stores unweighted adjacency; weighted runs need --engine ipregel");
    }
    // Checkpointing needs `Persist`-able vertex state; the struct-valued
    // applications (and the non-engine commands) do not qualify.
    let ckpt_capable = matches!(
        opts.command.as_str(),
        "pagerank" | "ppr" | "sssp" | "bfs" | "components" | "maxvalue" | "widest"
    );
    if opts.checkpoint_dir.is_some() && !ckpt_capable {
        return err(format!(
            "{} has no persistable vertex state; --checkpoint-dir/--resume are unsupported for it",
            opts.command
        ));
    }
    let g = load_graph(&opts)?;
    // Arm the tracer before dispatch so every engine hook sees it. The
    // RSS sampler turns memmodel's offline Figure 9 model into a live
    // per-run series (sampled at superstep barriers).
    let tracer = if opts.trace_out.is_some() || opts.metrics_out.is_some() {
        let mut t = Tracer::new();
        t.set_rss_sampler(ipregel_mem::current_rss_bytes, 4);
        Some(Arc::new(t))
    } else {
        None
    };
    let mut text = format!(
        "graph: {} (|V|={}, |E|={}{})\n",
        opts.graph,
        g.num_vertices(),
        g.num_edges(),
        if g.is_weighted() { ", weighted" } else { "" }
    );
    match opts.command.as_str() {
        "stats" => {
            let s = GraphStats::compute(&g);
            text.push_str(&format!("{s}\n"));
        }
        "pagerank" => {
            let version = version_for(&opts, CombinerKind::Broadcast);
            if version.selection_bypass {
                return err("PageRank vertices do not halt every superstep; the selection bypass is unsound for it (paper, Section 4)");
            }
            let p = PageRank { rounds: opts.rounds, damping: opts.damping };
            let out = run_app_ckpt(&g, &p, version, &opts, &tracer)?;
            text.push_str(&summary(&out, version));
            let mut ranked: Vec<(u32, f64)> = out.iter().map(|(id, &r)| (id, r)).collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            text.push_str(&format!("top {} by rank:\n", opts.top.min(ranked.len())));
            for (id, r) in ranked.into_iter().take(opts.top) {
                text.push_str(&format!("  {id}\t{r:.6}\n"));
            }
        }
        "sssp" => {
            if !g.address_map().contains(opts.source) {
                return err(format!("source vertex {} is not in the graph", opts.source));
            }
            let version = version_for(&opts, CombinerKind::Spinlock);
            let out = if opts.weighted {
                if version.combiner == CombinerKind::Broadcast {
                    return err("weighted SSSP sends point-to-point; the broadcast combiner cannot run it");
                }
                run_app_ckpt(&g, &WeightedSssp { source: opts.source }, version, &opts, &tracer)?
            } else {
                run_app_ckpt(&g, &Sssp { source: opts.source }, version, &opts, &tracer)?
            };
            text.push_str(&summary(&out, version));
            let reached = out.iter().filter(|(_, &d)| d != u32::MAX).count();
            text.push_str(&format!("reached: {} of {}\n", reached, g.num_vertices()));
            let mut far: Vec<(u32, u32)> =
                out.iter().filter(|(_, &d)| d != u32::MAX).map(|(id, &d)| (id, d)).collect();
            far.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
            text.push_str(&format!("{} farthest vertices:\n", opts.top.min(far.len())));
            for (id, d) in far.into_iter().take(opts.top) {
                text.push_str(&format!("  {id}\t{d}\n"));
            }
        }
        "bfs" => {
            if !g.address_map().contains(opts.source) {
                return err(format!("source vertex {} is not in the graph", opts.source));
            }
            let version = version_for(&opts, CombinerKind::Spinlock);
            let out = run_app_ckpt(&g, &Bfs { source: opts.source }, version, &opts, &tracer)?;
            text.push_str(&summary(&out, version));
            let reached = out.iter().filter(|(_, &d)| d != u32::MAX).count();
            let depth = out.iter().filter(|(_, &d)| d != u32::MAX).map(|(_, &d)| d).max();
            text.push_str(&format!(
                "reached: {} of {}; depth: {}\n",
                reached,
                g.num_vertices(),
                depth.map_or("-".into(), |d| d.to_string())
            ));
        }
        "ppr" => {
            if !g.address_map().contains(opts.source) {
                return err(format!("source vertex {} is not in the graph", opts.source));
            }
            let version = version_for(&opts, CombinerKind::Broadcast);
            if version.selection_bypass {
                return err("personalised PageRank never halts vertex-side; the bypass is unsound for it");
            }
            let p = ipregel_apps::PersonalizedPageRank {
                source: opts.source,
                damping: opts.damping,
                rounds: opts.rounds,
            };
            let out = run_app_ckpt(&g, &p, version, &opts, &tracer)?;
            text.push_str(&summary(&out, version));
            let mut ranked: Vec<(u32, f64)> = out.iter().map(|(id, &r)| (id, r)).collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
            text.push_str(&format!("top {} by personalised rank:\n", opts.top.min(ranked.len())));
            for (id, r) in ranked.into_iter().take(opts.top) {
                text.push_str(&format!("  {id}\t{r:.6}\n"));
            }
        }
        "diameter" => {
            if !g.address_map().contains(opts.source) {
                return err(format!("source vertex {} is not in the graph", opts.source));
            }
            let version = version_for(&opts, CombinerKind::Spinlock);
            let result =
                ipregel_apps::try_pseudo_diameter(&g, opts.source, version, &run_cfg(&opts, &tracer))
                    .map_err(run_error)?;
            match result {
                Some(est) => text.push_str(&format!(
                    "pseudo-diameter: {} (between vertices {} and {})\n",
                    est.pseudo_diameter, est.far_vertex, est.opposite_vertex
                )),
                None => text.push_str("pseudo-diameter: undefined (source reaches nothing)\n"),
            }
        }
        "bipartite" => {
            if !g.address_map().contains(opts.source) {
                return err(format!("seed vertex {} is not in the graph", opts.source));
            }
            let version = version_for(&opts, CombinerKind::Spinlock);
            let out =
                run_app(&g, &ipregel_apps::Bipartiteness { seed: opts.source }, version, &opts, &tracer)?;
            text.push_str(&summary(&out, version));
            let coloured = out.iter().filter(|(_, s)| s.color.is_some()).count();
            let conflicts = out.iter().filter(|(_, s)| s.conflict).count();
            text.push_str(&format!(
                "coloured: {} of {}; odd-cycle witnesses: {}; component bipartite: {}\n",
                coloured,
                g.num_vertices(),
                conflicts,
                conflicts == 0
            ));
        }
        "maxvalue" => {
            let version = version_for(&opts, CombinerKind::Spinlock);
            let out = run_app_ckpt(&g, &ipregel_apps::MaxValue, version, &opts, &tracer)?;
            text.push_str(&summary(&out, version));
            let distinct: std::collections::HashSet<u64> = out.iter().map(|(_, &v)| v).collect();
            text.push_str(&format!("distinct converged values: {}\n", distinct.len()));
        }
        "kcore" => {
            let version = version_for(&opts, CombinerKind::Spinlock);
            let out = run_app(&g, &ipregel_apps::KCore { k: opts.k }, version, &opts, &tracer)?;
            text.push_str(&summary(&out, version));
            let alive = out.iter().filter(|(_, s)| s.alive).count();
            text.push_str(&format!("{}-core size: {} of {}\n", opts.k, alive, g.num_vertices()));
        }
        "widest" => {
            if !g.address_map().contains(opts.source) {
                return err(format!("source vertex {} is not in the graph", opts.source));
            }
            let version = version_for(&opts, CombinerKind::Spinlock);
            if version.combiner == CombinerKind::Broadcast {
                return err("widest path sends point-to-point; the broadcast combiner cannot run it");
            }
            let out =
                run_app_ckpt(&g, &ipregel_apps::WidestPath { source: opts.source }, version, &opts, &tracer)?;
            text.push_str(&summary(&out, version));
            let reached = out.iter().filter(|(_, &w)| w > 0).count();
            text.push_str(&format!("reached: {} of {}\n", reached, g.num_vertices()));
        }
        "validate" => {
            let report = ipregel_graph::validation::validate(&g);
            text.push_str(&format!(
                "symmetric: {}\nself loops: {}\nduplicate edges: {}\nweakly connected: {}\n",
                report.symmetric, report.self_loops, report.duplicate_edges, report.weakly_connected
            ));
        }
        "convert" => {
            let out_path = opts.out.clone().ok_or_else(|| CliError("convert needs --out".into()))?;
            let out_format = opts
                .out_format
                .clone()
                .unwrap_or_else(|| guess_format(&out_path).to_string());
            let mut file = std::fs::File::create(&out_path)
                .map_err(|e| CliError(format!("cannot create {out_path}: {e}")))?;
            match out_format.as_str() {
                "edgelist" => ipregel_graph::loaders::write_edge_list(&mut file, &g)
                    .map_err(|e| CliError(format!("write failed: {e}")))?,
                "dimacs" => ipregel_graph::loaders::write_dimacs_gr(&mut file, &g)
                    .map_err(|e| CliError(format!("write failed: {e}")))?,
                "binary" => {
                    // Re-derive the raw edge list from the graph.
                    let map = g.address_map();
                    let mut edges = Vec::with_capacity(g.num_edges() as usize);
                    for v in map.live_slots() {
                        for &u in g.out_neighbors(v) {
                            edges.push((map.id_of(v), map.id_of(u)));
                        }
                    }
                    ipregel_graph::loaders::write_binary(
                        &mut file,
                        map.base(),
                        map.num_vertices(),
                        &edges,
                        None,
                    )
                    .map_err(|e| CliError(format!("write failed: {e}")))?;
                }
                other => return err(format!("unknown output format {other:?}")),
            }
            text.push_str(&format!("wrote {out_path} as {out_format}\n"));
        }
        "components" => {
            let version = version_for(&opts, CombinerKind::Spinlock);
            let out = run_app_ckpt(&g, &Hashmin, version, &opts, &tracer)?;
            text.push_str(&summary(&out, version));
            let mut sizes: std::collections::HashMap<u32, u64> = Default::default();
            for (_, &label) in out.iter() {
                *sizes.entry(label).or_default() += 1;
            }
            let mut by_size: Vec<(u32, u64)> = sizes.into_iter().collect();
            by_size.sort_by_key(|&(label, s)| (std::cmp::Reverse(s), label));
            text.push_str(&format!("components: {}\n", by_size.len()));
            text.push_str(&format!("{} largest (label\tsize):\n", opts.top.min(by_size.len())));
            for (label, s) in by_size.into_iter().take(opts.top) {
                text.push_str(&format!("  {label}\t{s}\n"));
            }
        }
        _ => unreachable!("validated in parse_args"),
    }
    if let Some(t) = &tracer {
        let events = t.take_events();
        if let Some(path) = &opts.trace_out {
            std::fs::write(path, ipregel::trace::encode_trace(&events))
                .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        }
        if let Some(path) = &opts.metrics_out {
            std::fs::write(path, ipregel::trace::render_prometheus(&events, t.dropped_events()))
                .map_err(|e| CliError(format!("cannot write {path}: {e}")))?;
        }
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn temp_graph(contents: &str, ext: &str) -> tempfile_lite::TempPath {
        tempfile_lite::write(contents, ext)
    }

    /// Minimal self-contained temp-file helper (no external crate).
    mod tempfile_lite {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub struct TempPath(pub PathBuf);
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }
        pub fn write(contents: &str, ext: &str) -> TempPath {
            // ordering(Relaxed): unique-id tick; nothing else depends on it
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir()
                .join(format!("ipregel-cli-test-{}-{n}.{ext}", std::process::id()));
            std::fs::write(&path, contents).unwrap();
            TempPath(path)
        }
    }

    #[test]
    fn parses_full_flag_set() {
        let o = parse_args(&args(
            "sssp --graph g.txt --format dimacs --combiner mutex --bypass --threads 4 --top 3 --source 7 --weighted",
        ))
        .unwrap();
        assert_eq!(o.command, "sssp");
        assert_eq!(o.format.as_deref(), Some("dimacs"));
        assert_eq!(o.combiner, Some(CombinerKind::Mutex));
        assert!(o.bypass && o.weighted);
        assert_eq!((o.threads, o.top, o.source), (Some(4), 3, 7));
    }

    #[test]
    fn parses_schedule_policies() {
        assert_eq!(parse_args(&args("sssp --graph g")).unwrap().schedule, Schedule::VertexBalanced);
        for (value, expect) in [
            ("vertex", Schedule::VertexBalanced),
            ("edge", Schedule::EdgeBalanced),
            ("adaptive", Schedule::Adaptive),
        ] {
            let o = parse_args(&args(&format!("sssp --graph g --schedule {value}"))).unwrap();
            assert_eq!(o.schedule, expect);
        }
        let e = parse_args(&args("sssp --graph g --schedule chaotic")).unwrap_err();
        assert!(e.0.contains("chaotic"), "{e}");
    }

    #[test]
    fn schedules_agree_through_the_cli() {
        // A star with a hub plus a chain: same answers whichever way the
        // supersteps are chunked.
        let mut edges = String::new();
        for i in 1..40u32 {
            edges.push_str(&format!("0 {i}\n{i} 0\n"));
        }
        edges.push_str("40 0\n0 40\n");
        let f = temp_graph(&edges, "txt");
        let mut outputs = Vec::new();
        for schedule in ["vertex", "edge", "adaptive"] {
            let out = run_cli(&args(&format!(
                "components --graph {} --schedule {schedule} --threads 2",
                f.0.display()
            )))
            .unwrap();
            let stable: Vec<&str> = out
                .lines()
                .filter(|l| l.starts_with("components") || l.starts_with("  "))
                .collect();
            outputs.push(stable.join("\n"));
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
        assert!(outputs[0].contains("components: 1"), "{outputs:?}");
    }

    #[test]
    fn rejects_unknown_command_and_flags() {
        assert!(parse_args(&args("fly --graph g")).is_err());
        assert!(parse_args(&args("sssp --graph g --warp 9")).is_err());
        assert!(parse_args(&args("sssp")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn format_guessing() {
        assert_eq!(guess_format("usa.gr"), "dimacs");
        assert_eq!(guess_format("wiki.ipgb"), "binary");
        assert_eq!(guess_format("data.konect"), "konect");
        assert_eq!(guess_format("edges.txt"), "edgelist");
    }

    #[test]
    fn end_to_end_components() {
        let f = temp_graph("0 1\n1 0\n2 3\n3 2\n", "txt");
        let out = run_cli(&args(&format!("components --graph {}", f.0.display()))).unwrap();
        assert!(out.contains("components: 2"), "{out}");
        assert!(out.contains("|V|=4"));
    }

    #[test]
    fn end_to_end_weighted_sssp_on_dimacs() {
        let f = temp_graph("p sp 3 3\na 1 2 5\na 2 3 5\na 1 3 100\n", "gr");
        let out = run_cli(&args(&format!(
            "sssp --graph {} --source 1 --weighted --bypass",
            f.0.display()
        )))
        .unwrap();
        assert!(out.contains("reached: 3 of 3"), "{out}");
        assert!(out.contains("  3\t10"), "{out}");
    }

    #[test]
    fn end_to_end_pagerank_top_list() {
        let f = temp_graph("0 1\n1 0\n2 0\n", "txt");
        let out =
            run_cli(&args(&format!("pagerank --graph {} --rounds 5 --top 2", f.0.display())))
                .unwrap();
        assert!(out.contains("version: Broadcast"));
        assert!(out.contains("top 2 by rank:"));
    }

    #[test]
    fn pagerank_with_bypass_is_refused() {
        let f = temp_graph("0 1\n", "txt");
        let e = run_cli(&args(&format!("pagerank --graph {} --bypass", f.0.display())))
            .unwrap_err();
        assert!(e.0.contains("bypass"), "{e}");
    }

    #[test]
    fn weighted_sssp_on_broadcast_is_refused() {
        let f = temp_graph("0 1 5\n", "txt");
        let e = run_cli(&args(&format!(
            "sssp --graph {} --source 0 --weighted --combiner broadcast",
            f.0.display()
        )))
        .unwrap_err();
        assert!(e.0.contains("broadcast"), "{e}");
    }

    #[test]
    fn missing_source_is_reported() {
        let f = temp_graph("0 1\n", "txt");
        let e = run_cli(&args(&format!("sssp --graph {} --source 99", f.0.display())))
            .unwrap_err();
        assert!(e.0.contains("99"));
    }

    #[test]
    fn stats_command_prints_counts() {
        let f = temp_graph("0 1\n1 2\n", "txt");
        let out = run_cli(&args(&format!("stats --graph {}", f.0.display()))).unwrap();
        assert!(out.contains("|V| ="), "{out}");
    }

    #[test]
    fn missing_file_is_a_clean_error() {
        let e = run_cli(&args("stats --graph /nonexistent/x.txt")).unwrap_err();
        assert!(e.0.contains("cannot open"));
    }

    #[test]
    fn end_to_end_kcore() {
        // Triangle + tail: 2-core is the triangle.
        let f = temp_graph("0 1
1 0
1 2
2 1
2 0
0 2
2 3
3 2
", "txt");
        let out = run_cli(&args(&format!("kcore --graph {} --k 2", f.0.display()))).unwrap();
        assert!(out.contains("2-core size: 3 of 4"), "{out}");
    }

    #[test]
    fn end_to_end_maxvalue() {
        let f = temp_graph("0 1
1 0
", "txt");
        let out = run_cli(&args(&format!("maxvalue --graph {}", f.0.display()))).unwrap();
        assert!(out.contains("distinct converged values: 1"), "{out}");
    }

    #[test]
    fn end_to_end_widest_path() {
        let f = temp_graph("0 1 5
1 3 20
0 2 8
2 3 9
", "txt");
        let out = run_cli(&args(&format!("widest --graph {} --source 0", f.0.display()))).unwrap();
        assert!(out.contains("reached: 4 of 4"), "{out}");
    }

    #[test]
    fn end_to_end_validate() {
        let f = temp_graph("0 1
1 0
2 2
", "txt");
        let out = run_cli(&args(&format!("validate --graph {}", f.0.display()))).unwrap();
        assert!(out.contains("symmetric: true"), "{out}");
        assert!(out.contains("self loops: 1"), "{out}");
    }

    #[test]
    fn end_to_end_convert_to_dimacs_and_back() {
        let f = temp_graph("0 1 7
1 2 9
", "txt");
        let out_path = std::env::temp_dir().join(format!("ipregel-convert-{}.gr", std::process::id()));
        let out = run_cli(&args(&format!(
            "convert --graph {} --out {}",
            f.0.display(),
            out_path.display()
        )))
        .unwrap();
        assert!(out.contains("as dimacs"), "{out}");
        let round = run_cli(&args(&format!("stats --graph {}", out_path.display()))).unwrap();
        assert!(round.contains("|E| =              2"), "{round}");
        let _ = std::fs::remove_file(out_path);
    }

    #[test]
    fn engines_agree_through_the_cli() {
        let f = temp_graph("0 1
1 2
2 0
3 0
", "txt");
        let mut outputs = Vec::new();
        for engine in ["ipregel", "naive", "ooc", "seq"] {
            let out = run_cli(&args(&format!(
                "sssp --graph {} --source 0 --engine {engine}",
                f.0.display()
            )))
            .unwrap();
            // Strip the timing line, which differs per engine.
            let stable: Vec<&str> = out
                .lines()
                .filter(|l| l.starts_with("reached") || l.starts_with("  "))
                .collect();
            outputs.push(stable.join("
"));
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]), "{outputs:?}");
    }

    #[test]
    fn ooc_engine_refuses_weighted_runs() {
        let f = temp_graph("0 1 5
", "txt");
        let e = run_cli(&args(&format!(
            "sssp --graph {} --source 0 --weighted --engine ooc",
            f.0.display()
        )))
        .unwrap_err();
        assert!(e.0.contains("out-of-core"), "{e}");
    }

    #[test]
    fn unknown_engine_is_rejected() {
        assert!(parse_args(&args("sssp --graph g --engine warp")).is_err());
    }

    #[test]
    fn end_to_end_diameter() {
        let f = temp_graph("0 1
1 0
1 2
2 1
2 3
3 2
", "txt");
        let out =
            run_cli(&args(&format!("diameter --graph {} --source 1", f.0.display()))).unwrap();
        assert!(out.contains("pseudo-diameter: 3"), "{out}");
    }

    #[test]
    fn end_to_end_bipartite() {
        let odd = temp_graph("0 1
1 0
1 2
2 1
2 0
0 2
", "txt");
        let out = run_cli(&args(&format!("bipartite --graph {} --source 0", odd.0.display())))
            .unwrap();
        assert!(out.contains("component bipartite: false"), "{out}");
    }

    #[test]
    fn end_to_end_ppr() {
        let f = temp_graph("0 1
1 0
1 2
2 1
", "txt");
        let out = run_cli(&args(&format!(
            "ppr --graph {} --source 0 --rounds 10 --top 1",
            f.0.display()
        )))
        .unwrap();
        assert!(out.contains("top 1 by personalised rank:"), "{out}");
        assert!(out.lines().last().unwrap().starts_with("  0	"), "source ranks first: {out}");
    }

    #[test]
    fn convert_without_out_flag_errors() {
        let f = temp_graph("0 1
", "txt");
        let e = run_cli(&args(&format!("convert --graph {}", f.0.display()))).unwrap_err();
        assert!(e.0.contains("--out"), "{e}");
    }

    #[test]
    fn parses_trace_flags() {
        let o = parse_args(&args("sssp --graph g --trace-out t.jsonl --metrics-out m.prom"))
            .unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(o.metrics_out.as_deref(), Some("m.prom"));
        assert!(parse_args(&args("sssp --graph g --trace-out")).is_err());
    }

    #[test]
    fn trace_and_metrics_sinks_are_written() {
        use ipregel::trace::TraceEvent;
        let f = temp_graph("0 1\n1 0\n2 3\n3 2\n", "txt");
        let n = std::process::id();
        let trace_path = std::env::temp_dir().join(format!("ipregel-cli-trace-{n}.jsonl"));
        let metrics_path = std::env::temp_dir().join(format!("ipregel-cli-metrics-{n}.prom"));
        let out = run_cli(&args(&format!(
            "components --graph {} --threads 2 --trace-out {} --metrics-out {}",
            f.0.display(),
            trace_path.display(),
            metrics_path.display(),
        )))
        .unwrap();
        assert!(out.contains("components: 2"), "{out}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let events = ipregel::trace::decode_trace(&trace).unwrap();
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(metrics.contains("ipregel_supersteps_total"), "{metrics}");
        if cfg!(feature = "trace") {
            assert!(matches!(events.first(), Some(TraceEvent::RunBegin { .. })), "{events:?}");
            assert!(matches!(events.last(), Some(TraceEvent::RunEnd { .. })), "{events:?}");
            assert!(events.iter().any(|e| matches!(e, TraceEvent::Chunk { .. })), "{events:?}");
        } else {
            assert!(events.is_empty(), "disabled tracing must record nothing: {events:?}");
        }
        let _ = std::fs::remove_file(trace_path);
        let _ = std::fs::remove_file(metrics_path);
    }
}
