//! Runtime lock-order detector: per-thread acquisition stacks and a
//! deterministic panic on hierarchy inversion.
//!
//! Every lock in the workspace belongs to a [`LockClass`] with a
//! numeric rank; a thread must acquire locks in strictly increasing
//! rank order. The full hierarchy is declared in
//! `crates/lint/src/manifest.rs` (`LOCK_HIERARCHY`) and cross-checked
//! against the `LockClass::new` declarations by `ipregel-lint`, so the
//! static table and the runtime classes cannot drift apart.
//!
//! The detector mirrors the `trace` feature pattern: the types in this
//! module are always compiled (so call sites need no `cfg`), but with
//! the `lock-order` cargo feature off every hook is an empty
//! `#[inline(always)]` function and [`Held`] is a zero-sized token —
//! default builds are byte-for-byte unchanged. With the feature on,
//! [`acquire`] checks the calling thread's held-lock stack and panics
//! with *both* acquisition stacks (the stack held at the violation and
//! the acquiring class, plus captured backtraces when
//! `IPREGEL_LOCK_ORDER_BACKTRACE=1`) before the thread can block — a
//! TSan-style deadlock detector that runs offline, deterministically,
//! in an ordinary `cargo test`.
//!
//! Why strict (`<`, not `<=`): two locks of the *same* class acquired
//! nested (mailbox A held while locking mailbox B) deadlock just as
//! well as an inverted pair, so same-rank nesting is an error too.
//! Code that needs two same-class locks must take them through a
//! higher-level protocol (none does today).

#![forbid(unsafe_code)]

use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError, TryLockError, TryLockResult};

/// A named rank in the global lock hierarchy.
///
/// Declared once per lock family as a `pub const`; the linter collects
/// every `LockClass::new(<rank>, "<name>")` declaration and checks the
/// set against its `LOCK_HIERARCHY` manifest.
#[derive(Debug)]
pub struct LockClass {
    rank: u16,
    name: &'static str,
}

impl LockClass {
    /// Declare a class. `rank` orders acquisitions: lower ranks must be
    /// taken first.
    pub const fn new(rank: u16, name: &'static str) -> Self {
        LockClass { rank, name }
    }

    /// Position in the hierarchy (lower = acquired earlier).
    pub const fn rank(&self) -> u16 {
        self.rank
    }

    /// Stable name, as listed in the lint manifest.
    pub const fn name(&self) -> &'static str {
        self.name
    }
}

/// Classes of the locks owned by this crate (the pool substrate).
///
/// Pool locks rank below every client class. The nestings inside the
/// runtime are all downward-closed in this table: a worker going to
/// sleep re-scans the deques and the overflow injector while holding
/// `pool.state` (`state → deque`, `state → overflow`), and a helping
/// worker checks its scope latch under the same lock (`state → latch`).
/// Victim deques are probed strictly one at a time (never two
/// same-class locks), and client code never runs while any pool lock is
/// held — jobs are popped, the guard dropped, and only then executed.
pub mod classes {
    use super::LockClass;

    /// The pool's shutdown flag + sleep coordination (`PoolInner::state`).
    pub const POOL_STATE: LockClass = LockClass::new(10, "pool.state");
    /// One worker's steal deque (`StealDeque::inner`). Ranks above
    /// `pool.state` because a worker re-scans the deques while holding
    /// the state lock on its way to sleep; a thread never holds two
    /// deque locks at once (victims are probed strictly one at a time).
    pub const POOL_DEQUE: LockClass = LockClass::new(12, "pool.deque");
    /// The pool's overflow injector (`Injector::inner`): full-deque
    /// spill and non-worker submissions. Same nesting as `pool.deque`
    /// (scanned under `pool.state` on the sleep path), never held
    /// together with a deque lock.
    pub const POOL_OVERFLOW: LockClass = LockClass::new(14, "pool.overflow");
    /// A scope latch's pending-task counter (`ScopeLatch::pending`).
    pub const POOL_LATCH: LockClass = LockClass::new(20, "pool.latch");
    /// A scope latch's first-panic slot (`ScopeLatch::panic`).
    pub const POOL_PANIC: LockClass = LockClass::new(25, "pool.panic");
    /// Result slots of `install`/`join`/chunked consumers. Never held
    /// while client code runs: results are computed first and only then
    /// stored under the lock.
    pub const POOL_RESULT: LockClass = LockClass::new(30, "pool.result");
}

#[cfg(feature = "lock-order")]
mod armed {
    use super::LockClass;
    use std::backtrace::Backtrace;
    use std::cell::RefCell;

    pub(super) struct Entry {
        pub(super) class: &'static LockClass,
        pub(super) id: u64,
        pub(super) backtrace: Option<Backtrace>,
    }

    thread_local! {
        pub(super) static HELD: RefCell<Vec<Entry>> = const { RefCell::new(Vec::new()) };
        pub(super) static NEXT_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }

    pub(super) fn capture_backtraces() -> bool {
        static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *ENABLED.get_or_init(|| {
            std::env::var("IPREGEL_LOCK_ORDER_BACKTRACE").is_ok_and(|v| v == "1")
        })
    }

    pub(super) fn format_stack(held: &[Entry]) -> String {
        held.iter()
            .map(|e| format!("{} (rank {})", e.class.name(), e.class.rank()))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

/// Proof that the calling thread recorded an acquisition; dropping it
/// pops the entry. Zero-sized (and [`acquire`] is a no-op) unless the
/// `lock-order` feature is enabled.
#[must_use = "the token must live as long as the lock is held"]
#[derive(Debug)]
pub struct Held {
    #[cfg(feature = "lock-order")]
    id: u64,
}

#[cfg(feature = "lock-order")]
impl Drop for Held {
    fn drop(&mut self) {
        armed::HELD.with(|held| {
            let mut held = held.borrow_mut();
            // Guards can drop out of stack order; remove by id, scanning
            // from the top (the common LIFO case hits immediately).
            if let Some(pos) = held.iter().rposition(|e| e.id == self.id) {
                held.remove(pos);
            }
        });
    }
}

/// Record an acquisition of `class` on this thread, panicking if any
/// held lock has a rank ≥ `class`'s (a hierarchy inversion: some other
/// thread taking the same two locks in the declared order deadlocks
/// against us). Call *before* blocking on the lock so the inversion is
/// reported instead of hung.
#[inline(always)]
pub fn acquire(class: &'static LockClass) -> Held {
    #[cfg(feature = "lock-order")]
    {
        armed::HELD.with(|held| {
            let held = held.borrow();
            if let Some(conflict) = held.iter().find(|e| e.class.rank() >= class.rank()) {
                let mut msg = format!(
                    "lock-order inversion: acquiring `{}` (rank {}) while holding `{}` (rank {}); \
                     held stack: [{}]",
                    class.name(),
                    class.rank(),
                    conflict.class.name(),
                    conflict.class.rank(),
                    armed::format_stack(&held),
                );
                if let Some(bt) = &conflict.backtrace {
                    msg.push_str(&format!(
                        "\n--- acquisition stack of held `{}`:\n{bt}\n--- acquisition stack of `{}`:\n{}",
                        conflict.class.name(),
                        class.name(),
                        std::backtrace::Backtrace::force_capture(),
                    ));
                } else {
                    msg.push_str(
                        "\n(set IPREGEL_LOCK_ORDER_BACKTRACE=1 to capture both acquisition backtraces)",
                    );
                }
                panic!("{msg}");
            }
        });
        Held { id: record(class) }
    }
    #[cfg(not(feature = "lock-order"))]
    {
        let _ = class;
        Held {}
    }
}

/// Record a *non-blocking* acquisition (`try_lock`) of `class`. A
/// failed `try_lock` cannot deadlock, so no ordering check is made —
/// but the acquisition is still pushed so later blocking acquisitions
/// are checked against it.
#[inline(always)]
pub fn acquire_try(class: &'static LockClass) -> Held {
    #[cfg(feature = "lock-order")]
    {
        Held { id: record(class) }
    }
    #[cfg(not(feature = "lock-order"))]
    {
        let _ = class;
        Held {}
    }
}

#[cfg(feature = "lock-order")]
fn record(class: &'static LockClass) -> u64 {
    let id = armed::NEXT_ID.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    });
    let backtrace = armed::capture_backtraces()
        .then(std::backtrace::Backtrace::force_capture);
    armed::HELD.with(|held| {
        held.borrow_mut().push(armed::Entry { class, id, backtrace });
    });
    id
}

/// Number of lock acquisitions the calling thread currently holds
/// (always 0 with the feature off). Exposed for the detector's own
/// tests: a drained stack proves tokens pair with releases.
pub fn held_count() -> usize {
    #[cfg(feature = "lock-order")]
    {
        armed::HELD.with(|held| held.borrow().len())
    }
    #[cfg(not(feature = "lock-order"))]
    {
        0
    }
}

/// A [`std::sync::Mutex`] bound to a [`LockClass`]: every `lock` runs
/// the hierarchy check and the guard carries the [`Held`] token, so the
/// recorded hold window exactly matches the real one.
///
/// With the `lock-order` feature off this is a layout-transparent
/// wrapper (no class field, no token) — the §6 lock-size measurements
/// and `memmodel`'s byte accounting are unchanged.
pub struct OrderedMutex<T> {
    inner: Mutex<T>,
    #[cfg(feature = "lock-order")]
    class: &'static LockClass,
}

impl<T> OrderedMutex<T> {
    /// A new unlocked mutex of the given class.
    pub const fn new(class: &'static LockClass, value: T) -> Self {
        #[cfg(not(feature = "lock-order"))]
        let _ = class;
        OrderedMutex {
            inner: Mutex::new(value),
            #[cfg(feature = "lock-order")]
            class,
        }
    }

    /// Blocking lock; checks the hierarchy before blocking.
    pub fn lock(&self) -> LockResult<OrderedGuard<'_, T>> {
        #[cfg(feature = "lock-order")]
        let held = acquire(self.class);
        #[cfg(not(feature = "lock-order"))]
        let held = Held {};
        match self.inner.lock() {
            Ok(inner) => Ok(OrderedGuard { _held: held, inner }),
            Err(poisoned) => {
                Err(PoisonError::new(OrderedGuard { _held: held, inner: poisoned.into_inner() }))
            }
        }
    }

    /// Non-blocking lock; records but (being unable to deadlock) does
    /// not enforce the hierarchy.
    pub fn try_lock(&self) -> TryLockResult<OrderedGuard<'_, T>> {
        #[cfg(feature = "lock-order")]
        let held = acquire_try(self.class);
        #[cfg(not(feature = "lock-order"))]
        let held = Held {};
        match self.inner.try_lock() {
            Ok(inner) => Ok(OrderedGuard { _held: held, inner }),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            Err(TryLockError::Poisoned(poisoned)) => Err(TryLockError::Poisoned(PoisonError::new(
                OrderedGuard { _held: held, inner: poisoned.into_inner() },
            ))),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("OrderedMutex");
        #[cfg(feature = "lock-order")]
        d.field("class", &self.class.name());
        d.finish_non_exhaustive()
    }
}

/// Guard of an [`OrderedMutex`]: the inner [`MutexGuard`] plus the
/// hierarchy token, released together.
#[derive(Debug)]
pub struct OrderedGuard<'a, T> {
    _held: Held,
    inner: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for OrderedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T> OrderedGuard<'a, T> {
    /// `Condvar::wait` for ordered guards: releases the inner lock for
    /// the wait and re-couples the hierarchy token to the re-acquired
    /// guard. The token stays recorded across the wait — the thread is
    /// blocked, so it cannot trip the checker meanwhile, and on wakeup
    /// it once again truly holds the lock.
    pub fn wait_on(self, cv: &Condvar) -> LockResult<OrderedGuard<'a, T>> {
        let OrderedGuard { _held, inner } = self;
        match cv.wait(inner) {
            Ok(inner) => Ok(OrderedGuard { _held, inner }),
            Err(poisoned) => {
                Err(PoisonError::new(OrderedGuard { _held, inner: poisoned.into_inner() }))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ordering note for the reader: these tests only exercise the
    // detector machinery itself; real hierarchy tests live in the
    // root-crate `lock_order` integration suite.

    #[test]
    fn ordered_mutex_locks_and_unlocks() {
        let m = OrderedMutex::new(&classes::POOL_RESULT, 5u32);
        // lock-order(pool.result)
        *m.lock().expect("poisoned") += 1;
        // lock-order(pool.result)
        assert_eq!(*m.lock().expect("poisoned"), 6);
        assert_eq!(held_count(), 0, "tokens must pair with releases");
    }

    #[test]
    fn try_lock_contended_reports_would_block() {
        let m = OrderedMutex::new(&classes::POOL_RESULT, ());
        // lock-order(pool.result)
        let g = m.lock().expect("poisoned");
        // lock-order(pool.result)
        assert!(matches!(m.try_lock(), Err(TryLockError::WouldBlock)));
        drop(g);
        // lock-order(pool.result)
        assert!(m.try_lock().is_ok());
        assert_eq!(held_count(), 0);
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn ascending_ranks_are_accepted() {
        let a = OrderedMutex::new(&classes::POOL_STATE, ());
        let b = OrderedMutex::new(&classes::POOL_LATCH, ());
        // lock-order(pool.state)
        let ga = a.lock().expect("poisoned");
        // lock-order(pool.latch)
        let gb = b.lock().expect("poisoned");
        assert_eq!(held_count(), 2);
        drop(gb);
        drop(ga);
        assert_eq!(held_count(), 0);
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn descending_ranks_panic_naming_both_locks() {
        let result = std::panic::catch_unwind(|| {
            let hi = OrderedMutex::new(&classes::POOL_RESULT, ());
            let lo = OrderedMutex::new(&classes::POOL_STATE, ());
            // lock-order(pool.result)
            let _g_hi = hi.lock().expect("poisoned");
            // lock-order(pool.state)
            let _g_lo = lo.lock().expect("poisoned");
        });
        let payload = result.expect_err("inversion must panic");
        let msg = payload.downcast_ref::<String>().expect("string panic message");
        assert!(msg.contains("pool.result"), "panic must name the held lock: {msg}");
        assert!(msg.contains("pool.state"), "panic must name the acquired lock: {msg}");
        assert_eq!(held_count(), 0, "unwinding must drain the stack");
    }

    #[cfg(feature = "lock-order")]
    #[test]
    fn same_rank_nesting_panics() {
        let result = std::panic::catch_unwind(|| {
            let a = OrderedMutex::new(&classes::POOL_STATE, ());
            let b = OrderedMutex::new(&classes::POOL_STATE, ());
            // lock-order(pool.state)
            let _ga = a.lock().expect("poisoned");
            // lock-order(pool.state)
            let _gb = b.lock().expect("poisoned");
        });
        assert!(result.is_err(), "same-class nesting is a deadlock pattern");
        assert_eq!(held_count(), 0);
    }
}
