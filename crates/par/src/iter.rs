//! Mini parallel iterators over the in-tree pool.
//!
//! This is an *indexed-evaluation* model, deliberately simpler than
//! rayon's producer/consumer architecture: every iterator knows its
//! length and can evaluate position `i` independently
//! (`eval(i) -> Option<Item>`, where `None` means "filtered out").
//! Consumers split `0..len` into a fixed, deterministic chunk plan —
//! `min(len, current_num_threads × 8)` contiguous chunks — spawn one
//! scope task per chunk, evaluate each chunk sequentially on a pool
//! worker, and combine the per-chunk partial results **sequentially in
//! chunk order** on the calling thread.
//!
//! Two consequences the rest of the workspace relies on:
//!
//! - **Worker-index routing holds.** Chunk bodies always run on pool
//!   workers (never inline on a non-worker caller), so
//!   `current_thread_index()` is `Some(_)` inside `for_each`/`map`
//!   closures and the sharded `Worklist`/`Tracer` paths stay on their
//!   lock-free lanes, exactly as under rayon.
//! - **Determinism is *stronger* than rayon's.** For a fixed thread
//!   count the chunk plan is fixed and reduction order is chunk order,
//!   so even non-associative combines (f64 sums) are reproducible
//!   run-to-run — rayon's adaptive splitting does not guarantee that.
//!
//! Only the adapter/consumer surface the workspace actually uses is
//! implemented: `map`, `filter`, `enumerate`, `zip`, `for_each`,
//! `collect::<Vec<_>>`, `sum`, `count`, `reduce`, `reduce_with`, plus
//! `par_sort_unstable` on slices. `enumerate`/`zip` are index-based and
//! must sit *before* any `filter` (rayon encodes the same restriction
//! through its `IndexedParallelIterator` trait; here it is documented
//! instead of typed).

#![forbid(unsafe_code)]

use crate::lockorder::{classes, OrderedMutex};
use crate::pool;
use std::ops::Range;

/// Chunks per worker thread. At least the engine chunk planner's
/// maximum oversubscription factor (base ×4, over-partitioned adaptive
/// plans ×8 — see `crates/core/src/engine/chunks.rs`), so one `scope`
/// task always maps to one plan chunk and work-stealing can rebalance
/// at plan-chunk granularity.
const CHUNKS_PER_THREAD: usize = 8;

/// The deterministic chunk plan for a consumer over `len` items.
fn chunk_bounds(len: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let chunks = len.min(pool::current_num_threads().max(1) * CHUNKS_PER_THREAD);
    let base = len / chunks;
    let extra = len % chunks;
    let mut bounds = Vec::with_capacity(chunks);
    let mut start = 0;
    for ci in 0..chunks {
        let size = base + usize::from(ci < extra);
        bounds.push(start..start + size);
        start += size;
    }
    bounds
}

/// Evaluate `run` over every chunk on pool workers; return the partial
/// results **in chunk order**. Panics in a chunk propagate to the
/// caller after all sibling chunks drained (scope semantics).
fn drive<R, F>(len: usize, run: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let bounds = chunk_bounds(len);
    if bounds.is_empty() {
        return Vec::new();
    }
    let slots: Vec<OrderedMutex<Option<R>>> =
        bounds.iter().map(|_| OrderedMutex::new(&classes::POOL_RESULT, None)).collect();
    {
        let run = &run;
        let slots = &slots;
        pool::scope(|s| {
            for (ci, range) in bounds.into_iter().enumerate() {
                s.spawn(move |_| {
                    // Evaluate the chunk *before* taking the slot lock:
                    // user closures must never run while a pool.result
                    // lock is held (nested scopes inside `run` would
                    // trip the lock-order detector, and rightly so).
                    let out = run(range);
                    // lock-order(pool.result)
                    *slots[ci].lock().expect("chunk slot poisoned") = Some(out);
                });
            }
        });
    }
    slots.into_iter()
        .map(|m| {
            m.into_inner().expect("chunk slot poisoned").expect("scope waited for every chunk")
        })
        .collect()
}

/// A parallel iterator: an indexed sequence evaluated on pool workers.
///
/// `eval(i)` must be pure enough to run concurrently from many threads
/// (`&self`, `Sync`); `None` marks a position removed by `filter`.
pub trait ParallelIterator: Sized + Send + Sync {
    /// The produced item type.
    type Item: Send;

    /// Number of indexable positions (pre-`filter`).
    fn len(&self) -> usize;

    /// Evaluate position `i`; `None` if filtered out.
    fn eval(&self, i: usize) -> Option<Self::Item>;

    /// True when the sequence has no positions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Transform each item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Keep items satisfying `pred` (called with `&Item`, as in rayon).
    fn filter<P>(self, pred: P) -> Filter<Self, P>
    where
        P: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { base: self, pred }
    }

    /// Pair each item with its index. Index-based: apply before any
    /// `filter`, never after (see the module docs).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Pair items positionally with another sequence (length = the
    /// shorter of the two). Index-based, like `enumerate`.
    fn zip<B>(self, other: B) -> Zip<Self, B::Iter>
    where
        B: IntoParallelIterator,
    {
        Zip { a: self, b: other.into_par_iter() }
    }

    /// Run `f` on every item, in parallel over the chunk plan.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        drive(self.len(), |r| {
            for i in r {
                if let Some(item) = self.eval(i) {
                    f(item);
                }
            }
        });
    }

    /// Collect into a container (order-preserving).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_iter(self)
    }

    /// Sum the items. Chunk partials are combined in chunk order, so the
    /// result is deterministic for a fixed thread count even for floats.
    fn sum<S>(self) -> S
    where
        S: Send + std::iter::Sum<Self::Item> + std::iter::Sum<S>,
    {
        drive(self.len(), |r| r.filter_map(|i| self.eval(i)).sum::<S>()).into_iter().sum()
    }

    /// Count the surviving items.
    fn count(self) -> usize {
        drive(self.len(), |r| r.filter_map(|i| self.eval(i)).count()).into_iter().sum()
    }

    /// Fold all items with `op`, seeding every chunk from `identity`.
    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        drive(self.len(), |r| r.filter_map(|i| self.eval(i)).fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }

    /// Fold all items with `op`; `None` when everything was filtered.
    fn reduce_with<OP>(self, op: OP) -> Option<Self::Item>
    where
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        drive(self.len(), |r| r.filter_map(|i| self.eval(i)).reduce(&op))
            .into_iter()
            .flatten()
            .reduce(&op)
    }
}

/// Conversion into a [`ParallelIterator`] (mirrors rayon's trait).
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The produced item type.
    type Item: Send;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: ParallelIterator> IntoParallelIterator for I {
    type Iter = I;
    type Item = I::Item;
    fn into_par_iter(self) -> I {
        self
    }
}

/// `par_iter()` by shared reference (mirrors rayon's blanket scheme).
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The produced item type.
    type Item: Send + 'a;
    /// Iterate the borrowed contents in parallel.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = <&'a C as IntoParallelIterator>::Item;
    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn eval(&self, i: usize) -> Option<&'a T> {
        Some(&self.slice[i])
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self.as_slice() }
    }
}

/// Integer types usable as parallel range endpoints.
pub trait RangeInteger: Copy + Send + Sync {
    /// `max(end - start, 0)` as a usize.
    fn span(start: Self, end: Self) -> usize;
    /// `start + i`.
    fn offset(start: Self, i: usize) -> Self;
}

macro_rules! range_integer {
    ($($t:ty),*) => {$(
        impl RangeInteger for $t {
            #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
            fn span(start: Self, end: Self) -> usize {
                if end > start { (end - start) as usize } else { 0 }
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn offset(start: Self, i: usize) -> Self {
                start + i as $t
            }
        }
    )*};
}

range_integer!(u16, u32, u64, usize, i32, i64);

/// Parallel iterator over an integer range.
pub struct RangeIter<T: RangeInteger> {
    start: T,
    len: usize,
}

impl<T: RangeInteger> ParallelIterator for RangeIter<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.len
    }
    fn eval(&self, i: usize) -> Option<T> {
        Some(T::offset(self.start, i))
    }
}

impl<T: RangeInteger> IntoParallelIterator for Range<T> {
    type Iter = RangeIter<T>;
    type Item = T;
    fn into_par_iter(self) -> RangeIter<T> {
        RangeIter { start: self.start, len: T::span(self.start, self.end) }
    }
}

/// See [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn eval(&self, i: usize) -> Option<R> {
        self.base.eval(i).map(&self.f)
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<I, P> {
    base: I,
    pred: P,
}

impl<I, P> ParallelIterator for Filter<I, P>
where
    I: ParallelIterator,
    P: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn eval(&self, i: usize) -> Option<I::Item> {
        self.base.eval(i).filter(|item| (self.pred)(item))
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    base: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.base.len()
    }
    fn eval(&self, i: usize) -> Option<(usize, I::Item)> {
        self.base.eval(i).map(|item| (i, item))
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn eval(&self, i: usize) -> Option<(A::Item, B::Item)> {
        match (self.a.eval(i), self.b.eval(i)) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }
}

/// Collection from a parallel iterator (mirrors rayon's trait).
pub trait FromParallelIterator<T: Send> {
    /// Build the collection, preserving sequence order.
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: IntoParallelIterator<Item = T>;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I>(iter: I) -> Self
    where
        I: IntoParallelIterator<Item = T>,
    {
        let iter = iter.into_par_iter();
        let parts = drive(iter.len(), |r| {
            r.filter_map(|i| iter.eval(i)).collect::<Vec<T>>()
        });
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            out.extend(part);
        }
        out
    }
}

/// `par_sort_unstable` on mutable slices (the one `ParallelSliceMut`
/// method the workspace uses).
pub trait ParallelSliceMut<T: Send> {
    /// Sort in parallel: chunk-local `sort_unstable` on pool workers,
    /// then a sequential k-way merge on the caller. `Copy` is required
    /// by the merge's scratch copy; the only call sites sort `u32`
    /// vertex lists.
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Copy + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord + Copy + Sync,
    {
        let bounds = chunk_bounds(self.len());
        if bounds.len() <= 1 {
            self.sort_unstable();
            return;
        }
        // Sort each chunk in place, in parallel. The chunks borrow
        // disjoint regions via split_at_mut, so no unsafe is needed.
        {
            let mut rest: &mut [T] = self;
            let mut pieces: Vec<&mut [T]> = Vec::with_capacity(bounds.len());
            for r in &bounds {
                let (head, tail) = rest.split_at_mut(r.len());
                pieces.push(head);
                rest = tail;
            }
            pool::scope(|s| {
                for piece in pieces {
                    s.spawn(move |_| piece.sort_unstable());
                }
            });
        }
        // Sequential k-way merge of the sorted runs through a scratch
        // buffer; k is at most threads×4, so a linear scan per output
        // element is fine for the list sizes involved.
        let mut scratch: Vec<T> = Vec::with_capacity(self.len());
        let mut cursors: Vec<usize> = bounds.iter().map(|r| r.start).collect();
        for _ in 0..self.len() {
            let mut best: Option<(usize, T)> = None;
            for (k, r) in bounds.iter().enumerate() {
                if cursors[k] < r.end {
                    let v = self[cursors[k]];
                    if best.is_none_or(|(_, b)| v < b) {
                        best = Some((k, v));
                    }
                }
            }
            let (k, v) = best.expect("cursor accounting covers every element");
            cursors[k] += 1;
            scratch.push(v);
        }
        self.copy_from_slice(&scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_map_collect_preserves_order() {
        let xs: Vec<u32> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| u64::from(x) * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
    }

    #[test]
    fn range_filter_collect_preserves_order() {
        let odd: Vec<u32> = (0u32..1000).into_par_iter().filter(|&v| v % 2 == 1).collect();
        let expect: Vec<u32> = (0..1000).filter(|v| v % 2 == 1).collect();
        assert_eq!(odd, expect);
    }

    #[test]
    fn enumerate_indices_match_positions() {
        let xs = vec![10u32, 20, 30, 40];
        let pairs: Vec<(usize, u32)> = xs.par_iter().enumerate().map(|(i, &v)| (i, v)).collect();
        assert_eq!(pairs, vec![(0, 10), (1, 20), (2, 30), (3, 40)]);
    }

    #[test]
    fn zip_pairs_positionally_and_truncates() {
        let a = vec![1u32, 2, 3];
        let b = vec![10u32, 20, 30, 40];
        let sum: u32 = a.par_iter().zip(b.par_iter()).map(|(&x, &y)| x + y).sum();
        assert_eq!(sum, 11 + 22 + 33);
    }

    #[test]
    fn sum_count_reduce_agree_with_sequential() {
        let xs: Vec<u64> = (0..5000).collect();
        let s: u64 = xs.par_iter().map(|&x| x).sum();
        assert_eq!(s, 4999 * 5000 / 2);
        assert_eq!(xs.par_iter().filter(|&&x| x % 7 == 0).count(), xs.len().div_ceil(7));
        let max = (0u64..5000)
            .into_par_iter()
            .map(|v| (v, 1u64))
            .reduce(|| (0, 0), |a, b| (a.0.max(b.0), a.1 + b.1));
        assert_eq!(max, (4999, 5000));
        assert_eq!(xs.par_iter().map(|&x| x).reduce_with(u64::max), Some(4999));
        let none: Option<u64> =
            xs.par_iter().map(|&x| x).filter(|_| false).reduce_with(u64::max);
        assert_eq!(none, None);
    }

    #[test]
    fn for_each_runs_on_workers_with_indices() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let on_worker = AtomicUsize::new(0);
        let total = 1000usize;
        (0..total).into_par_iter().for_each(|_| {
            if pool::current_thread_index().is_some() {
                // ordering(Relaxed): test tally; for_each exit synchronizes
                on_worker.fetch_add(1, Ordering::Relaxed);
            }
        });
        // ordering(Relaxed): read after the parallel call returned
        assert_eq!(on_worker.load(Ordering::Relaxed), total, "no chunk ran off-pool");
    }

    #[test]
    fn par_sort_unstable_sorts() {
        let mut xs: Vec<u32> = (0..10_000u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let mut expect = xs.clone();
        expect.sort_unstable();
        xs.par_sort_unstable();
        assert_eq!(xs, expect);
        let mut small = vec![3u32, 1, 2];
        small.par_sort_unstable();
        assert_eq!(small, vec![1, 2, 3]);
        let mut empty: Vec<u32> = Vec::new();
        empty.par_sort_unstable();
        assert!(empty.is_empty());
    }

    #[test]
    fn float_sum_is_deterministic_across_runs() {
        let xs: Vec<f64> = (0..4096).map(|i| 1.0 / f64::from(i + 1)).collect();
        let first: f64 = xs.par_iter().map(|&x| x).sum();
        for _ in 0..8 {
            let again: f64 = xs.par_iter().map(|&x| x).sum();
            assert_eq!(first.to_bits(), again.to_bits(), "chunk-ordered combine");
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let xs: Vec<u32> = Vec::new();
        let out: Vec<u32> = xs.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let s: u32 = (0u32..0).into_par_iter().sum();
        assert_eq!(s, 0);
    }
}
