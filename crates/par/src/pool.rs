//! The in-tree scoped thread pool: per-worker steal deques plus an
//! overflow injector.
//!
//! One [`PoolInner`] owns a set of worker OS threads. Each worker owns
//! a bounded [`StealDeque`]: it pushes and pops its own work LIFO at
//! the back, and when its deque runs dry it first drains the shared
//! overflow [`Injector`], then steals FIFO from the fronts of the other
//! workers' deques, probing victims in a seeded deterministic order
//! fixed at pool construction (a pure function of `(num_threads,
//! worker index)`). Jobs submitted from non-worker threads — and jobs
//! that would overflow a full deque — go to the injector. Workers carry
//! a stable index `0..num_threads` published through a thread-local,
//! which is the contract the sharded
//! [`Tracer`](../../core/src/trace.rs) and `Worklist::with_shards`
//! depend on: *while a closure runs on worker `i`,
//! [`current_thread_index`] returns `Some(i)`, indices are unique within
//! the pool, and they never change for the lifetime of the pool.*
//!
//! # Determinism: execution is not reduction
//!
//! Stealing makes *which worker runs which job* timing-dependent, and
//! that is the point — an idle worker takes load off a busy one. What
//! stays deterministic is everything results flow through: the chunk
//! plan is a pure function of `(len, thread count)` (see `iter.rs`),
//! each chunk writes its partial result into a slot indexed by chunk
//! id, and the caller folds the slots sequentially in chunk order. Any
//! worker may execute any chunk; the reduction tree never changes, so
//! f64 sums are bit-identical run to run at a fixed thread count.
//! `crates/par/tests/pool_contract.rs` pins this with stealing forced.
//!
//! # Sleep protocol (why no wakeup is lost)
//!
//! Idle workers park on the pool's condvar under the `pool.state`
//! mutex. The queues themselves are *not* under that mutex — pushes
//! touch only the target deque/injector lock — so a pusher must know
//! whether anyone is asleep. The pool keeps an advisory sleeper count:
//! a worker increments it (while holding `pool.state`) **before**
//! re-scanning every queue, then waits; a pusher publishes its job and
//! then reads the count, notifying under `pool.state` if it is
//! non-zero. The registered re-scan ([`PoolInner::find_job_registered`])
//! acquires every queue's mutex unconditionally — it must not use the
//! relaxed `is_empty_hint` fast path, which reports "empty" without a
//! lock and therefore without any happens-before edge to the pusher
//! (a hint-based scan plus the relaxed count read would be the
//! store-buffering litmus: both sides miss, the job sits queued with
//! every worker parked). With real acquisitions, for any queue the
//! sleeper scanned before the push landed, the sleeper's increment is
//! visible to the pusher through that queue's mutex (increment →
//! scan-unlock ≺ push-lock → count-read), so the pusher notifies; if
//! the sleeper scanned after, the scan found the job. The
//! `sleep_protocol_never_loses_the_wakeup` loom model in
//! `crates/core/tests/loom.rs` pins exactly this edge.
//! Notifying under `pool.state` closes the remaining window:
//! the sleeper holds that mutex from registration until the condvar
//! wait releases it, so the notify cannot fire in between.
//!
//! # Scopes and panics
//!
//! [`scope`] collects tasks spawned via [`Scope::spawn`] and does not
//! return until every one of them has completed. Each task runs under
//! `catch_unwind`; the first captured payload is resumed on the caller
//! once the scope is complete, so a panicking task never takes a worker
//! thread down — the pool survives and sibling tasks drain normally,
//! whether the panicking chunk ran on its spawner or on a thief. This
//! is what lets the engines' chunk-level `catch_unwind` isolation
//! (`RunError::VertexPanic`) keep working unchanged on the in-tree pool:
//! the engines catch inside the task, so the pool-level capture is a
//! second line of defence, not the primary mechanism.
//!
//! # Nested scopes: supported
//!
//! A worker that blocks in [`scope`] (or [`join`]) *helps*: it executes
//! queued tasks while it waits — its own deque first, then the overflow
//! injector, then steals. Nested `scope` calls from inside a task
//! therefore cannot deadlock, even on a one-thread pool whose deque has
//! spilled into the injector — the blocked worker drains both. Non-
//! worker threads never execute tasks (their `current_thread_index` is
//! `None`, so executing engine work there would bypass the worker-shard
//! routing); they park on the scope's latch instead.
//!
//! # Safety model
//!
//! The only `unsafe` in this crate is lifetime erasure of scoped task
//! closures (and of the closure passed to [`ThreadPool::install`]): a
//! `Box<dyn FnOnce() + Send + 'scope>` is transmuted to `'static` so it
//! can sit in a deque. The erasure is sound because the scope (or
//! `install`) blocks until the task's completion latch fires —
//! including on the panic path — so no borrow captured by the closure
//! can be outlived. `tests/pool_contract.rs` exercises the contract
//! (including panic-in-stolen-chunk and borrow-heavy workloads) and the
//! suite runs under Miri via `tools/miri-test.sh`.

use crate::deque::{Injector, StealDeque};
use crate::lockorder::{classes, OrderedMutex};
use crate::padded::CachePadded;

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, OnceLock};
use std::thread::JoinHandle;

/// A queued task, lifetime-erased (see the module-level safety model).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Per-worker deque bound. Chunk plans produce at most `threads × 8`
/// jobs per parallel region (see `iter.rs`), so the bound is hit only
/// by deeply nested fan-out — which spills to the injector and keeps
/// working, just without LIFO locality.
const DEQUE_CAPACITY: usize = 256;

/// Seed of the victim probe orders: fixed, so each worker's steal order
/// is a pure function of `(num_threads, worker index)` and reruns probe
/// identically.
const STEAL_SEED: u64 = 0xA076_1D64_78BD_642F;

/// One SplitMix64 step — the probe-order PRNG. Pure, allocation-free,
/// and plenty to decorrelate per-worker victim orders.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic victim order of worker `index`: a seeded
/// Fisher–Yates shuffle of every other worker. Distinct workers get
/// decorrelated orders (so thieves fan out instead of convoying on
/// victim 0), and the same `(num_threads, index)` always yields the
/// same order (so steal-heavy runs stay reproducible to a debugger).
fn victim_order(num_threads: usize, index: usize) -> Box<[usize]> {
    let mut order: Vec<usize> = (0..num_threads).filter(|&v| v != index).collect();
    let mut rng = STEAL_SEED ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for i in (1..order.len()).rev() {
        let j = usize::try_from(splitmix64(&mut rng) % (i as u64 + 1))
            .expect("j <= i < num_threads fits usize");
        order.swap(i, j);
    }
    order.into_boxed_slice()
}

/// Work-stealing counters of one pool, cumulative since construction.
///
/// Snapshot with [`ThreadPool::stats`] or [`current_pool_stats`];
/// deltas across a parallel region are what the engines report per
/// superstep (the `pool` trace event).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs a worker popped from another worker's deque (FIFO steals).
    pub steals: u64,
    /// Jobs routed through the overflow injector: non-worker
    /// submissions plus full-deque spill.
    pub overflow: u64,
}

/// Shared state of one pool.
struct PoolInner {
    /// Shutdown flag + the mutex sleepers park under.
    state: OrderedMutex<PoolState>,
    /// Signalled on job arrival (when sleepers are registered), scope
    /// completion, and shutdown.
    cv: Condvar,
    /// One bounded deque per worker, indexed by worker index.
    deques: Box<[StealDeque<Job>]>,
    /// Overflow queue: non-worker submissions and full-deque spill.
    overflow: Injector<Job>,
    /// `victims[i]`: the deterministic probe order worker `i` steals in.
    victims: Box<[Box<[usize]>]>,
    /// `steals[i]`: successful steals *by* worker `i` (padded so the
    /// hot-path increments don't false-share).
    steals: Box<[CachePadded<AtomicU64>]>,
    /// Jobs pushed to the overflow injector.
    overflow_pushes: AtomicU64,
    /// Advisory count of workers registered on the sleep path — see the
    /// module-level "Sleep protocol".
    sleepers: AtomicUsize,
    num_threads: usize,
}

struct PoolState {
    shutdown: bool,
}

impl PoolInner {
    /// Submit a job: a worker of this pool pushes to its own deque
    /// (LIFO end), spilling to the injector when full; everyone else
    /// goes straight to the injector. Sleepers are then woken if any
    /// are registered.
    fn push(&self, job: Job) {
        let job = match current_worker() {
            Some((pool, index)) if std::ptr::eq(pool, self) => {
                self.deques[index].push_back(job).err()
            }
            _ => Some(job),
        };
        if let Some(job) = job {
            // ordering(Relaxed): monotone counter; readers snapshot it
            // via `stats()` outside parallel regions.
            self.overflow_pushes.fetch_add(1, Ordering::Relaxed);
            self.overflow.push(job);
        }
        self.wake_if_sleepers();
    }

    /// Notify the condvar iff a sleeper might be registered.
    fn wake_if_sleepers(&self) {
        // ordering(Relaxed): pairs with the registration in the sleep
        // path — a sleeper increments the count *before* re-scanning
        // the queues with `find_job_registered`, whose unconditional
        // lock acquisitions carry the increment to us: if it scanned
        // our queue before our push, the increment reached us through
        // that queue's mutex and this read sees it; if it scanned
        // after, it found the job. (Module docs, "Sleep protocol".)
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            self.wake_all();
        }
    }

    /// Wake everything (job for a sleeper, scope completed, shutdown).
    /// Notifying under the state lock is what makes the sleep protocol
    /// lossless: a registered sleeper holds that lock until it is
    /// inside `Condvar::wait`.
    fn wake_all(&self) {
        // lock-order(pool.state)
        let _guard = self.state.lock().expect("pool state poisoned");
        self.cv.notify_all();
    }

    /// One scheduling round for worker `index`: own deque (LIFO), then
    /// the overflow injector (FIFO), then steal from victims in the
    /// worker's fixed probe order (FIFO from each). Never holds two
    /// queue locks at once.
    fn find_job(&self, index: usize) -> Option<Job> {
        if let Some(job) = self.deques[index].pop_back() {
            return Some(job);
        }
        if let Some(job) = self.overflow.pop_front() {
            return Some(job);
        }
        for &victim in &self.victims[index] {
            if let Some(job) = self.deques[victim].pop_front() {
                // ordering(Relaxed): monotone counter; readers snapshot
                // it via `stats()` outside parallel regions.
                self.steals[index].fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// The sleep-path scheduling round: same scan order as [`find_job`]
    /// (own deque, overflow, victims), but every pop acquires its queue
    /// mutex unconditionally instead of trusting the relaxed emptiness
    /// hint. A worker that has registered on the sleeper count must scan
    /// with *this* — the lock acquisitions are the happens-before edges
    /// that make its registration visible to any pusher it raced, which
    /// is the whole no-lost-wakeup argument (module docs, "Sleep
    /// protocol"). `find_job` is the fast path for unregistered workers
    /// only, where a stale-empty hint merely delays work, never strands
    /// it.
    ///
    /// [`find_job`]: Self::find_job
    fn find_job_registered(&self, index: usize) -> Option<Job> {
        if let Some(job) = self.deques[index].pop_back_locked() {
            return Some(job);
        }
        if let Some(job) = self.overflow.pop_front_locked() {
            return Some(job);
        }
        for &victim in &self.victims[index] {
            if let Some(job) = self.deques[victim].pop_front_locked() {
                // ordering(Relaxed): monotone counter; readers snapshot
                // it via `stats()` outside parallel regions.
                self.steals[index].fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Cumulative counters.
    fn stats(&self) -> PoolStats {
        PoolStats {
            // ordering(Relaxed): monotone counters; the engines read
            // deltas across a region whose scope join is the barrier.
            steals: self.steals.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
            // ordering(Relaxed): same monotone-counter protocol.
            overflow: self.overflow_pushes.load(Ordering::Relaxed),
        }
    }
}

/// Completion latch of one [`scope`] (or one `install`/`join`).
struct ScopeLatch {
    pool: Arc<PoolInner>,
    /// Tasks spawned and not yet finished.
    pending: OrderedMutex<usize>,
    /// Signalled when `pending` reaches zero; waited on by non-worker
    /// scope callers (workers wait on the pool's cv and help instead).
    done_cv: Condvar,
    /// First panic payload captured from a task.
    panic: OrderedMutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeLatch {
    fn new(pool: Arc<PoolInner>) -> Arc<Self> {
        Arc::new(ScopeLatch {
            pool,
            pending: OrderedMutex::new(&classes::POOL_LATCH, 0),
            done_cv: Condvar::new(),
            panic: OrderedMutex::new(&classes::POOL_PANIC, None),
        })
    }

    fn add_task(&self) {
        // lock-order(pool.latch)
        *self.pending.lock().expect("latch poisoned") += 1;
    }

    fn finish_task(&self) {
        // lock-order(pool.latch)
        let mut pending = self.pending.lock().expect("latch poisoned");
        *pending -= 1;
        if *pending == 0 {
            drop(pending);
            self.done_cv.notify_all();
            // Helping workers wait on the pool cv, not ours. The latch
            // guard is dropped first: pool.state ranks *below* the latch
            // in the lock hierarchy, so holding the latch here would be
            // an inversion against `wait_helping`.
            self.pool.wake_all();
        }
    }

    fn is_done(&self) -> bool {
        // lock-order(pool.latch)
        *self.pending.lock().expect("latch poisoned") == 0
    }

    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        // lock-order(pool.panic)
        let mut slot = self.panic.lock().expect("latch panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Block the calling thread until all tasks finished. Workers of the
    /// owning pool help execute queued tasks while they wait.
    fn wait(&self) {
        if let Some((pool, index)) = current_worker() {
            if std::ptr::eq(pool, &*self.pool) {
                self.wait_helping(index);
                return;
            }
        }
        // lock-order(pool.latch)
        let mut pending = self.pending.lock().expect("latch poisoned");
        while *pending > 0 {
            pending = pending.wait_on(&self.done_cv).expect("latch poisoned");
        }
    }

    /// Worker-side wait: help run jobs (own deque, overflow, steals)
    /// until the latch fires, sleeping through the pool's sleep
    /// protocol when nothing is runnable.
    ///
    /// The done-check happens while the pool's state lock is held, and
    /// `finish_task`'s final wakeup (`wake_all`) notifies *under* that
    /// same lock — so "latch fires between our check and `cv.wait`"
    /// cannot be missed: the finisher blocks on the lock until we are
    /// inside the wait.
    fn wait_helping(&self, index: usize) {
        loop {
            loop {
                if self.is_done() {
                    return;
                }
                match self.pool.find_job(index) {
                    Some(job) => job(),
                    None => break,
                }
            }
            // lock-order(pool.state) — `is_done` below then nests
            // pool.latch inside pool.state (10 → 20), one of the
            // runtime's declared nestings; `find_job` nests the queue
            // locks the same way (10 → 12, 10 → 14).
            let mut st = self.pool.state.lock().expect("pool state poisoned");
            // ordering(Relaxed): register *before* the re-scan — the
            // pusher-side pairing is `wake_if_sleepers`, and the
            // `find_job_registered` lock acquisitions below are what
            // carry this increment to the pusher (module docs, "Sleep
            // protocol").
            self.pool.sleepers.fetch_add(1, Ordering::Relaxed);
            let job = loop {
                if let Some(job) = self.pool.find_job_registered(index) {
                    break Some(job);
                }
                if self.is_done() {
                    break None;
                }
                st = st.wait_on(&self.pool.cv).expect("pool state poisoned");
            };
            // ordering(Relaxed): deregister, mirroring the registration.
            self.pool.sleepers.fetch_sub(1, Ordering::Relaxed);
            drop(st);
            match job {
                Some(job) => job(),
                None => return,
            }
        }
    }
}

thread_local! {
    /// `(pool pointer, worker index)` while on a pool worker thread.
    /// The raw pointer is valid for the thread's whole life: each worker
    /// owns an `Arc<PoolInner>` keeping the pointee alive.
    static CURRENT_WORKER: Cell<Option<(*const PoolInner, usize)>> = const { Cell::new(None) };
}

/// The pool + index of the current worker thread, if any.
fn current_worker() -> Option<(&'static PoolInner, usize)> {
    CURRENT_WORKER.with(|c| {
        c.get().map(|(ptr, idx)| {
            // SAFETY: the pointer was published by this very thread's
            // worker loop, which holds an Arc<PoolInner> for as long as
            // the thread lives; promotion to &'static is confined to
            // this call's return value and never stored.
            (unsafe { &*ptr }, idx)
        })
    })
}

/// Index of the calling thread within its pool (`None` off-pool).
///
/// This is the worker-index contract of the crate: stable for the
/// thread's lifetime, unique and dense (`0..num_threads`) within a pool.
pub fn current_thread_index() -> Option<usize> {
    CURRENT_WORKER.with(|c| c.get().map(|(_, idx)| idx))
}

/// Number of threads of the current pool (the global pool's size when
/// called from outside any pool).
pub fn current_num_threads() -> usize {
    match current_worker() {
        Some((pool, _)) => pool.num_threads,
        None => global().inner.num_threads,
    }
}

/// Work-stealing counters of the current pool: the worker's own pool on
/// a worker thread, the global pool elsewhere. The engines snapshot
/// this around each superstep's parallel region and report the delta
/// (`LoadStats::steals`/`overflow`, the `pool` trace event).
pub fn current_pool_stats() -> PoolStats {
    match current_worker() {
        Some((pool, _)) => pool.stats(),
        None => global().inner.stats(),
    }
}

fn default_num_threads() -> usize {
    for var in ["IPREGEL_PAR_THREADS", "RAYON_NUM_THREADS"] {
        if let Some(n) = std::env::var(var).ok().and_then(|v| v.parse::<usize>().ok()) {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The process-wide pool, built on first use and never torn down.
fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .num_threads(default_num_threads())
            .build()
            .expect("failed to build the global thread pool")
    })
}

/// The pool `scope`/`join` should target from the calling thread: the
/// worker's own pool on a worker, the global pool elsewhere.
fn current_pool() -> Arc<PoolInner> {
    WORKER_POOL_ARC
        .with(|c| c.borrow().clone())
        .unwrap_or_else(|| global().inner.clone())
}

thread_local! {
    /// An owning handle to the worker's pool, so `current_pool` can hand
    /// out `Arc`s without promoting raw pointers to owners.
    static WORKER_POOL_ARC: std::cell::RefCell<Option<Arc<PoolInner>>> =
        const { std::cell::RefCell::new(None) };
}

/// Error building a [`ThreadPool`] (thread spawn failure).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build failed: {}", self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder` for the surface the
/// workspace uses (`num_threads` + `build`).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: None }
    }

    /// Pool size; `0` (or unset) means the environment default.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Spawn the workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = self.num_threads.unwrap_or_else(default_num_threads).max(1);
        let inner = Arc::new(PoolInner {
            state: OrderedMutex::new(&classes::POOL_STATE, PoolState { shutdown: false }),
            cv: Condvar::new(),
            deques: (0..n).map(|_| StealDeque::new(DEQUE_CAPACITY)).collect(),
            overflow: Injector::new(),
            victims: (0..n).map(|i| victim_order(n, i)).collect(),
            steals: (0..n).map(|_| CachePadded::new(AtomicU64::new(0))).collect(),
            overflow_pushes: AtomicU64::new(0),
            sleepers: AtomicUsize::new(0),
            num_threads: n,
        });
        let mut workers = Vec::with_capacity(n);
        for index in 0..n {
            let pool = Arc::clone(&inner);
            let handle = std::thread::Builder::new()
                .name(format!("ipregel-par-{index}"))
                .spawn(move || worker_loop(pool, index))
                .map_err(|e| ThreadPoolBuildError { message: e.to_string() })?;
            workers.push(handle);
        }
        Ok(ThreadPool { inner, workers })
    }
}

fn worker_loop(pool: Arc<PoolInner>, index: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((Arc::as_ptr(&pool), index))));
    WORKER_POOL_ARC.with(|c| *c.borrow_mut() = Some(Arc::clone(&pool)));
    loop {
        // Fast path: schedule lock-hierarchy-bottom-up with no state
        // lock at all. Jobs are panic-wrapped at spawn time (the
        // payload lands in the scope latch); a stray panic from the
        // wrapper itself would still only kill this one worker, not the
        // pool.
        while let Some(job) = pool.find_job(index) {
            job();
        }
        // Sleep path (module docs, "Sleep protocol"): register, re-scan
        // under the state lock, and only then wait.
        // lock-order(pool.state)
        let mut st = pool.state.lock().expect("pool state poisoned");
        // ordering(Relaxed): register *before* the re-scan — the
        // pusher-side pairing is `wake_if_sleepers`, and the
        // `find_job_registered` lock acquisitions below are what carry
        // this increment to the pusher.
        pool.sleepers.fetch_add(1, Ordering::Relaxed);
        let job = loop {
            if let Some(job) = pool.find_job_registered(index) {
                break Some(job);
            }
            if st.shutdown {
                break None;
            }
            st = st.wait_on(&pool.cv).expect("pool state poisoned");
        };
        // ordering(Relaxed): deregister, mirroring the registration.
        pool.sleepers.fetch_sub(1, Ordering::Relaxed);
        drop(st);
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// An owned pool with a fixed number of worker threads.
///
/// Dropping the pool shuts the workers down after the queues drain;
/// every `scope`/`install` blocks to completion first, so drop never
/// races live tasks.
pub struct ThreadPool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool").field("num_threads", &self.inner.num_threads).finish()
    }
}

impl ThreadPool {
    /// Pool size.
    pub fn current_num_threads(&self) -> usize {
        self.inner.num_threads
    }

    /// Cumulative work-stealing counters of this pool.
    pub fn stats(&self) -> PoolStats {
        self.inner.stats()
    }

    /// Run `f` on a worker of this pool and return its result.
    ///
    /// Inside `f`, [`current_thread_index`] is `Some(i)` for the worker
    /// that picked the job up, stable for the whole call — scopes and
    /// parallel iterators started inside `f` target this pool. Calling
    /// `install` from a worker of this same pool runs `f` inline.
    pub fn install<R, F>(&self, f: F) -> R
    where
        R: Send,
        F: FnOnce() -> R + Send,
    {
        if let Some((pool, _)) = current_worker() {
            if std::ptr::eq(pool, &*self.inner) {
                return f();
            }
        }
        let latch = ScopeLatch::new(Arc::clone(&self.inner));
        let result: Arc<OrderedMutex<Option<R>>> =
            Arc::new(OrderedMutex::new(&classes::POOL_RESULT, None));
        latch.add_task();
        {
            let latch = Arc::clone(&latch);
            let result = Arc::clone(&result);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                // `f` runs *before* the result lock is taken: user code
                // never executes while a pool.result lock is held, so
                // recursive scopes/joins inside `f` start from an empty
                // held-lock stack.
                let out = catch_unwind(AssertUnwindSafe(f));
                match out {
                    // lock-order(pool.result)
                    Ok(v) => *result.lock().expect("install result poisoned") = Some(v),
                    Err(payload) => latch.record_panic(payload),
                }
                latch.finish_task();
            });
            // SAFETY: `install` blocks on the latch below until the job
            // has run to completion (success or panic), so the borrows
            // captured by `f` outlive every use; erasing the lifetime
            // only lets the box sit in a queue meanwhile.
            let job: Job = unsafe {
                std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job)
            };
            self.inner.push(job);
        }
        latch.wait();
        // lock-order(pool.panic)
        if let Some(payload) = latch.panic.lock().expect("latch panic slot poisoned").take() {
            resume_unwind(payload);
        }
        // lock-order(pool.result)
        let v = result.lock().expect("install result poisoned").take();
        v.expect("install job finished without a result or a panic")
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            // lock-order(pool.state)
            let mut st = self.inner.state.lock().expect("pool state poisoned");
            st.shutdown = true;
            // Notify under the state lock: a worker between its
            // registration and its `Condvar::wait` still holds the
            // lock, so this notify cannot slip past it.
            self.inner.cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A scope handle: tasks spawned through it are guaranteed to finish
/// before the enclosing [`scope`] call returns.
pub struct Scope<'scope> {
    latch: Arc<ScopeLatch>,
    _marker: std::marker::PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queue `body` on the scope's pool (the spawning worker's own
    /// deque when called from a worker; the overflow injector
    /// otherwise).
    ///
    /// The task receives a scope handle of its own, so tasks can spawn
    /// further tasks (nested fan-out) into the same scope.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.latch.add_task();
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope { latch: Arc::clone(&latch), _marker: std::marker::PhantomData };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| body(&scope))) {
                latch.record_panic(payload);
            }
            latch.finish_task();
        });
        // SAFETY: `scope` (the function) blocks on this latch until
        // every spawned task has completed — including tasks spawned by
        // tasks, because each spawn increments the latch before the
        // spawning task decrements it — so all borrows captured by
        // `body` ('scope) strictly outlive the queued box.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        let pool = Arc::clone(&self.latch.pool);
        pool.push(job);
    }
}

/// Run `op` with a [`Scope`] on the current pool (the global pool when
/// called from outside any pool) and wait for every spawned task.
///
/// `op` itself runs on the calling thread; tasks run on pool workers. A
/// worker blocked here helps drain the queues (see the module docs —
/// this is what makes nested scopes deadlock-free). The first panic
/// from any task is resumed on the caller after all tasks finished.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let pool = current_pool();
    let latch = ScopeLatch::new(pool);
    let s = Scope { latch: Arc::clone(&latch), _marker: std::marker::PhantomData };
    let result = catch_unwind(AssertUnwindSafe(|| op(&s)));
    latch.wait();
    // lock-order(pool.panic)
    if let Some(payload) = latch.panic.lock().expect("latch panic slot poisoned").take() {
        resume_unwind(payload);
    }
    match result {
        Ok(r) => r,
        Err(payload) => resume_unwind(payload),
    }
}

/// Run `a` and `b`, potentially in parallel, and return both results.
///
/// `a` runs on the calling thread; `b` is queued on the current pool.
/// Mirrors `rayon::join` semantics: if either closure panics, the panic
/// is propagated only after both have finished.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let rb: OrderedMutex<Option<RB>> = OrderedMutex::new(&classes::POOL_RESULT, None);
    let ra = {
        let rb = &rb;
        scope(|s| {
            s.spawn(move |_| {
                // Run `b` to completion *before* taking the result lock:
                // recursive joins inside `b` (par_sort's split tree)
                // would otherwise nest pool.result inside pool.result —
                // same-class nesting, which the detector rejects.
                let v = b();
                // lock-order(pool.result)
                *rb.lock().expect("join result poisoned") = Some(v);
            });
            a()
        })
    };
    let rb = rb.into_inner().expect("join result poisoned").expect("join task completed");
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn install_runs_on_a_worker_with_an_index() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let (idx, n) = pool.install(|| (current_thread_index(), current_num_threads()));
        assert!(idx.is_some());
        assert!(idx.unwrap() < 3);
        assert_eq!(n, 3);
        assert_eq!(current_thread_index(), None, "caller is not a worker");
    }

    #[test]
    fn scope_runs_every_task() {
        let n = 100;
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..n {
                s.spawn(|_| {
                    // ordering(Relaxed): test tally; scope exit synchronizes
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        // ordering(Relaxed): read after scope join, no concurrent writers
        assert_eq!(counter.load(Ordering::Relaxed), n);
    }

    #[test]
    fn nested_scopes_complete_on_a_single_thread_pool() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let total = pool.install(|| {
            let counter = AtomicUsize::new(0);
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|_| {
                        // Nested scope from inside a task: the lone
                        // worker must help-drain instead of deadlocking.
                        scope(|inner| {
                            for _ in 0..4 {
                                inner.spawn(|_| {
                                    // ordering(Relaxed): test tally; scope exit synchronizes
                                    counter.fetch_add(1, Ordering::Relaxed);
                                });
                            }
                        });
                    });
                }
            });
            // ordering(Relaxed): read after scope join, no concurrent writers
            counter.load(Ordering::Relaxed)
        });
        assert_eq!(total, 16);
    }

    #[test]
    fn task_panic_propagates_after_siblings_finish() {
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                for i in 0..8 {
                    let finished = &finished;
                    s.spawn(move |_| {
                        if i == 3 {
                            panic!("task 3 exploded");
                        }
                        // ordering(Relaxed): test tally; scope exit synchronizes
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err());
        // ordering(Relaxed): read after scope join, no concurrent writers
        assert_eq!(finished.load(Ordering::Relaxed), 7, "siblings drained");
        // The pool survives: new work still runs.
        let after = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|_| {
                // ordering(Relaxed): test tally; scope exit synchronizes
                after.fetch_add(1, Ordering::Relaxed);
            });
        });
        // ordering(Relaxed): read after scope join, no concurrent writers
        assert_eq!(after.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn join_returns_both_and_runs_b_somewhere() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn join_propagates_b_panic() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            join(|| 1, || -> usize { panic!("right side") })
        }));
        assert!(r.is_err());
    }

    #[test]
    fn install_propagates_panic_and_pool_survives() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let r = catch_unwind(AssertUnwindSafe(|| pool.install(|| panic!("inside install"))));
        assert!(r.is_err());
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn worker_indices_are_dense_and_stable() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let seen = OrderedMutex::new(&classes::POOL_RESULT, std::collections::HashSet::new());
        pool.install(|| {
            scope(|s| {
                for _ in 0..64 {
                    let seen = &seen;
                    s.spawn(move |_| {
                        let idx = current_thread_index().expect("task on a worker");
                        assert!(idx < 4);
                        // lock-order(pool.result)
                        seen.lock().unwrap().insert(idx);
                        // An index observed twice within one closure must
                        // be identical: the task never migrates.
                        assert_eq!(current_thread_index(), Some(idx));
                    });
                }
            });
        });
        // lock-order(pool.result)
        assert!(!seen.lock().unwrap().is_empty());
    }

    #[test]
    fn builder_zero_means_default() {
        let pool = ThreadPoolBuilder::new().num_threads(0).build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn victim_orders_are_deterministic_permutations() {
        for n in [1usize, 2, 3, 8] {
            for i in 0..n {
                let a = victim_order(n, i);
                let b = victim_order(n, i);
                assert_eq!(a, b, "probe order must be a pure function of (n, index)");
                let mut sorted: Vec<usize> = a.to_vec();
                sorted.sort_unstable();
                let expect: Vec<usize> = (0..n).filter(|&v| v != i).collect();
                assert_eq!(sorted, expect, "every other worker appears exactly once");
            }
        }
    }

    #[test]
    fn steals_are_counted_when_thieves_drain_a_spawner() {
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let before = pool.stats();
        pool.install(|| {
            scope(|s| {
                for _ in 0..64 {
                    s.spawn(|_| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                    });
                }
            });
        });
        let after = pool.stats();
        // All 64 tasks land on the installing worker's deque; the other
        // three workers can only run them by stealing.
        assert!(
            after.steals > before.steals,
            "64 slow tasks on one deque must produce at least one steal: {after:?}"
        );
    }

    #[test]
    fn non_worker_submissions_route_through_the_overflow_injector() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let before = pool.stats().overflow;
        // `install` from a non-worker thread pushes its one job from
        // outside the pool — the injector path by construction.
        assert_eq!(pool.install(|| 41 + 1), 42);
        assert!(pool.stats().overflow > before, "non-worker submit must count as overflow");
    }

    #[test]
    fn deque_overflow_spills_to_injector_and_completes() {
        // One worker, fan-out far beyond DEQUE_CAPACITY: the spawning
        // worker's deque fills and the rest must spill to the injector
        // without losing a single task.
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let counter = AtomicUsize::new(0);
        let n = DEQUE_CAPACITY * 3;
        pool.install(|| {
            scope(|s| {
                for _ in 0..n {
                    let counter = &counter;
                    s.spawn(move |_| {
                        // ordering(Relaxed): test tally; scope exit synchronizes
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
        // ordering(Relaxed): read after scope join, no concurrent writers
        assert_eq!(counter.load(Ordering::Relaxed), n);
        assert!(pool.stats().overflow > 0, "fan-out past capacity must hit the injector");
    }
}
