//! `ipregel-par` — the workspace's parallel runtime facade.
//!
//! Every crate in the workspace gets its parallelism from here instead
//! of depending on rayon directly. Two interchangeable backends sit
//! behind the same API (see docs/INTERNALS.md, "Parallel runtime"):
//!
//! - **`std-pool`** (default): the in-tree, zero-dependency scoped
//!   thread pool in [`pool`] plus the indexed mini parallel iterators in
//!   [`iter`]. Builds with `--offline` against an empty registry — this
//!   is what makes the workspace hermetic — and its chunk-ordered
//!   reductions are deterministic for a fixed thread count.
//! - **`rayon`**: maps the identical surface onto the real rayon crate.
//!   The feature is a plain cfg switch with *no* cargo dependency (any
//!   registry reference breaks `--offline` resolution); networked
//!   builds inject the crate with
//!   `RUSTFLAGS="--extern rayon=… -L dependency=…"`. Used by the CI
//!   `rayon-equivalence` job to check both backends produce
//!   bit-identical engine results on the golden fixtures.
//!
//! The facade surface is exactly what the workspace uses — nothing
//! speculative: `current_num_threads`, `current_thread_index`, `join`,
//! `scope`, `ThreadPool{Builder}` with `install`, the `prelude` with
//! `par_iter`/`into_par_iter`/`par_sort_unstable` and the
//! map/filter/enumerate/zip/for_each/collect/sum/count/reduce family.
//! [`CachePadded`] (the crossbeam replacement) is always in-tree,
//! independent of the backend.
//!
//! # Worker-index contract
//!
//! The load-bearing guarantee, relied on by the sharded `Tracer` and
//! `Worklist`: inside any closure run by this crate (scope tasks,
//! `install`, parallel-iterator bodies), [`current_thread_index`]
//! returns `Some(i)` with `i < current_num_threads()`, stable for the
//! closure's whole execution and unique per concurrent worker. Off-pool
//! threads get `None` and must take the callers' documented fallback
//! paths. Both backends honor this; `tests/pool.rs` pins it.

#[cfg(not(any(feature = "std-pool", feature = "rayon")))]
compile_error!(
    "ipregel-par needs a backend: enable the default `std-pool` feature \
     (hermetic, in-tree) or `rayon` (requires an externally supplied rayon \
     rlib via RUSTFLAGS --extern; see docs/INTERNALS.md)"
);

mod padded;
pub use padded::CachePadded;

// Backend-independent: the lock-hierarchy classes and the runtime
// lock-order detector (armed by the `lock-order` feature) apply to the
// client crates' locks whichever pool executes them.
pub mod lockorder;

// When both features are on (e.g. `--all-features`), rayon wins: the
// point of the switch is comparing the real thing against the in-tree
// pool, so "rayon requested" must mean rayon delivered.
#[cfg(not(feature = "rayon"))]
pub mod deque;
#[cfg(not(feature = "rayon"))]
mod pool;
#[cfg(not(feature = "rayon"))]
pub mod iter;

#[cfg(not(feature = "rayon"))]
pub use pool::{
    current_num_threads, current_pool_stats, current_thread_index, join, scope, PoolStats, Scope,
    ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

/// The traits that make `par_iter()` / `into_par_iter()` /
/// `par_sort_unstable()` available — import as `use
/// ipregel_par::prelude::*;` exactly like rayon's.
#[cfg(not(feature = "rayon"))]
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSliceMut,
    };
}

#[cfg(feature = "rayon")]
pub use rayon::{
    current_num_threads, current_thread_index, join, scope, Scope, ThreadPool,
    ThreadPoolBuildError, ThreadPoolBuilder,
};

/// Work-stealing counters (std-pool backend). Rayon does not expose its
/// scheduler's internals, so the rayon arm reports zeros — callers
/// (engine `LoadStats`, the `pool` trace event) treat the counters as
/// best-effort observability, never as correctness inputs.
#[cfg(feature = "rayon")]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Always 0 on the rayon backend.
    pub steals: u64,
    /// Always 0 on the rayon backend.
    pub overflow: u64,
}

/// Rayon-backend stub: counters are invisible inside rayon, so the
/// snapshot is always zero (deltas across a region are then zero too).
#[cfg(feature = "rayon")]
pub fn current_pool_stats() -> PoolStats {
    PoolStats::default()
}

/// Rayon-backed prelude: the real thing, same import path.
#[cfg(feature = "rayon")]
pub mod prelude {
    pub use rayon::prelude::*;
}
