//! Cache-line padding, replacing `crossbeam::utils::CachePadded` for
//! the two sharded structures (`Tracer`, `Worklist`) that use it to
//! keep per-worker shards off each other's cache lines.

#![forbid(unsafe_code)]

/// Pads and aligns `T` to the cache-line size so adjacent array slots
/// never share a line (false sharing).
///
/// 128 bytes on x86_64 (spatial prefetcher pulls line pairs) and
/// aarch64 (128-byte lines on several server cores), 64 elsewhere —
/// the same sizing crossbeam uses for these targets.
#[cfg_attr(any(target_arch = "x86_64", target_arch = "aarch64"), repr(align(128)))]
#[cfg_attr(not(any(target_arch = "x86_64", target_arch = "aarch64")), repr(align(64)))]
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Hash)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pad `value` to a cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_a_cache_line() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 64);
        let arr = [CachePadded::new(0u8), CachePadded::new(1u8)];
        let a = std::ptr::from_ref(&arr[0]) as usize;
        let b = std::ptr::from_ref(&arr[1]) as usize;
        assert!(b - a >= 64, "adjacent elements span distinct lines");
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(vec![1, 2, 3]);
        p.push(4);
        assert_eq!(&*p, &[1, 2, 3, 4]);
        assert_eq!(p.into_inner(), vec![1, 2, 3, 4]);
    }
}
