//! Per-worker steal deques and the overflow injector — the queues
//! behind the work-stealing pool (see `pool.rs`).
//!
//! # Shape
//!
//! Each pool worker owns one bounded [`StealDeque`]: the owner pushes
//! and pops **LIFO** at the back (hot tasks stay cache-warm), thieves
//! pop **FIFO** from the front (the oldest — and for the engines'
//! chunk plans, the largest-remaining — task migrates first). When an
//! owner's deque is full, or when a non-worker thread submits work, the
//! job goes to the pool's single unbounded [`Injector`] instead, which
//! every worker polls between its own deque and stealing.
//!
//! # Why mutexes, not a lock-free Chase–Lev deque
//!
//! The workspace forbids speculative `unsafe` (see docs/INTERNALS.md,
//! "Safety model"), and the pool moves *chunk-granular* jobs — tens per
//! superstep, each wrapping thousands of vertex updates — so queue
//! operations are nowhere near the contention regime where a lock-free
//! deque pays for its complexity. A short critical section per
//! push/pop, with a relaxed advisory length so thieves can skip empty
//! victims without touching their locks, keeps the whole structure in
//! safe code and inside the lock hierarchy (`pool.deque` rank 12,
//! `pool.overflow` rank 14 — both nest inside `pool.state` and under
//! everything client code holds).
//!
//! # Loom
//!
//! Under `--cfg loom` the mutex and the advisory counter swap for
//! loom's instrumented doubles, so the steal-exactly-once,
//! overflow-handoff, and sleep-protocol models in
//! `crates/core/tests/loom.rs` exercise *these* types, not simplified
//! stand-ins. The lock-order detector is
//! std-only, so the loom build uses loom's plain `Mutex`; the class
//! annotations still document where each site sits in the hierarchy.

#![forbid(unsafe_code)]

use std::collections::VecDeque;

#[cfg(not(loom))]
use crate::lockorder::{classes, OrderedMutex};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicUsize, Ordering};

#[cfg(loom)]
use loom::sync::atomic::{AtomicUsize, Ordering};
#[cfg(loom)]
use loom::sync::Mutex;

/// One worker's double-ended job queue: owner-LIFO, thief-FIFO,
/// bounded. `push_back` hands the job back when the deque is full so
/// the caller can route it to the [`Injector`].
pub struct StealDeque<T> {
    #[cfg(not(loom))]
    inner: OrderedMutex<VecDeque<T>>,
    #[cfg(loom)]
    inner: Mutex<VecDeque<T>>,
    /// Advisory length mirror, updated under the lock. Thieves read it
    /// lock-free to skip empty victims; a stale read only costs one
    /// extra probe (stale-empty) or one skipped victim this round
    /// (stale-full) — never a lost job, because the sleep path re-scans
    /// with the `_locked` pops, which skip this hint and take the mutex
    /// unconditionally (see `pool.rs`, "sleep protocol").
    len: AtomicUsize,
    capacity: usize,
}

impl<T> StealDeque<T> {
    /// An empty deque holding at most `capacity` jobs.
    pub fn new(capacity: usize) -> Self {
        StealDeque {
            #[cfg(not(loom))]
            inner: OrderedMutex::new(&classes::POOL_DEQUE, VecDeque::new()),
            #[cfg(loom)]
            inner: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            capacity,
        }
    }

    /// Advisory emptiness: exact while the lock is held by no-one,
    /// otherwise at most one operation stale.
    pub fn is_empty_hint(&self) -> bool {
        // ordering(Relaxed): advisory fast-path filter only; every
        // correctness-bearing read re-checks under the deque mutex.
        self.len.load(Ordering::Relaxed) == 0
    }

    /// Owner push (back). Returns the job when the deque is at
    /// capacity — the caller must overflow it to the injector.
    pub fn push_back(&self, job: T) -> Result<(), T> {
        // lock-order(pool.deque)
        let mut q = self.inner.lock().expect("deque poisoned");
        if q.len() >= self.capacity {
            return Err(job);
        }
        q.push_back(job);
        // ordering(Relaxed): advisory mirror, written under the lock.
        self.len.store(q.len(), Ordering::Relaxed);
        Ok(())
    }

    /// Owner pop (back, LIFO).
    pub fn pop_back(&self) -> Option<T> {
        if self.is_empty_hint() {
            return None;
        }
        self.pop_back_locked()
    }

    /// Owner pop that unconditionally acquires the deque mutex, skipping
    /// the advisory fast path. The pool's registered sleep-path re-scan
    /// must use this variant: only a genuine lock acquisition gives the
    /// mutex-mediated happens-before edge the sleep protocol's
    /// no-lost-wakeup argument rests on (a hint-only `None` would let a
    /// concurrent pusher's `len` store and the sleeper's `sleepers`
    /// increment miss each other — the store-buffering litmus).
    pub fn pop_back_locked(&self) -> Option<T> {
        // lock-order(pool.deque)
        let mut q = self.inner.lock().expect("deque poisoned");
        let job = q.pop_back();
        // ordering(Relaxed): advisory mirror, written under the lock.
        self.len.store(q.len(), Ordering::Relaxed);
        job
    }

    /// Thief pop (front, FIFO).
    pub fn pop_front(&self) -> Option<T> {
        if self.is_empty_hint() {
            return None;
        }
        self.pop_front_locked()
    }

    /// Thief pop that unconditionally acquires the deque mutex — the
    /// sleep-path variant of [`Self::pop_front`] (see
    /// [`Self::pop_back_locked`] for why the hint must be skipped).
    pub fn pop_front_locked(&self) -> Option<T> {
        // lock-order(pool.deque)
        let mut q = self.inner.lock().expect("deque poisoned");
        let job = q.pop_front();
        // ordering(Relaxed): advisory mirror, written under the lock.
        self.len.store(q.len(), Ordering::Relaxed);
        job
    }
}

/// The pool's shared overflow queue: unbounded FIFO for jobs that
/// cannot sit in a worker deque (non-worker submissions, full-deque
/// overflow). Every worker polls it after its own deque and before
/// stealing, so injected jobs cannot be starved by deque churn.
pub struct Injector<T> {
    #[cfg(not(loom))]
    inner: OrderedMutex<VecDeque<T>>,
    #[cfg(loom)]
    inner: Mutex<VecDeque<T>>,
    /// Advisory length mirror; same discipline as [`StealDeque::len`].
    len: AtomicUsize,
}

impl<T> Injector<T> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector {
            #[cfg(not(loom))]
            inner: OrderedMutex::new(&classes::POOL_OVERFLOW, VecDeque::new()),
            #[cfg(loom)]
            inner: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        }
    }

    /// Advisory emptiness (see [`StealDeque::is_empty_hint`]).
    pub fn is_empty_hint(&self) -> bool {
        // ordering(Relaxed): advisory fast-path filter only; every
        // correctness-bearing read re-checks under the injector mutex.
        self.len.load(Ordering::Relaxed) == 0
    }

    /// Enqueue at the back (never fails — the injector is the overflow
    /// of last resort).
    pub fn push(&self, job: T) {
        // lock-order(pool.overflow)
        let mut q = self.inner.lock().expect("injector poisoned");
        q.push_back(job);
        // ordering(Relaxed): advisory mirror, written under the lock.
        self.len.store(q.len(), Ordering::Relaxed);
    }

    /// Dequeue from the front (FIFO: submission order is preserved, so
    /// a nested scope's overflowed jobs cannot starve behind newer
    /// ones).
    pub fn pop_front(&self) -> Option<T> {
        if self.is_empty_hint() {
            return None;
        }
        self.pop_front_locked()
    }

    /// Dequeue that unconditionally acquires the injector mutex — the
    /// sleep-path variant of [`Self::pop_front`] (see
    /// [`StealDeque::pop_back_locked`] for why the hint must be
    /// skipped).
    pub fn pop_front_locked(&self) -> Option<T> {
        // lock-order(pool.overflow)
        let mut q = self.inner.lock().expect("injector poisoned");
        let job = q.pop_front();
        // ordering(Relaxed): advisory mirror, written under the lock.
        self.len.store(q.len(), Ordering::Relaxed);
        job
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn owner_pops_lifo_thieves_pop_fifo() {
        let d = StealDeque::new(8);
        for i in 0..4 {
            d.push_back(i).unwrap();
        }
        assert_eq!(d.pop_back(), Some(3), "owner side is LIFO");
        assert_eq!(d.pop_front(), Some(0), "thief side is FIFO");
        assert_eq!(d.pop_back(), Some(2));
        assert_eq!(d.pop_front(), Some(1));
        assert_eq!(d.pop_back(), None);
        assert!(d.is_empty_hint());
    }

    #[test]
    fn full_deque_hands_the_job_back() {
        let d = StealDeque::new(2);
        d.push_back(1).unwrap();
        d.push_back(2).unwrap();
        assert_eq!(d.push_back(3), Err(3), "capacity bound must be enforced");
        assert_eq!(d.pop_back(), Some(2));
        d.push_back(4).unwrap();
        assert_eq!(d.pop_front(), Some(1));
        assert_eq!(d.pop_front(), Some(4));
    }

    #[test]
    fn injector_preserves_submission_order() {
        let inj = Injector::new();
        assert!(inj.is_empty_hint());
        for i in 0..3 {
            inj.push(i);
        }
        assert_eq!(inj.pop_front(), Some(0));
        assert_eq!(inj.pop_front(), Some(1));
        assert_eq!(inj.pop_front(), Some(2));
        assert_eq!(inj.pop_front(), None);
    }
}
