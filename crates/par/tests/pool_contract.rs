//! The facade contract the workspace's engines rely on, as integration
//! tests against the public API (see docs/INTERNALS.md, "Parallel
//! runtime"):
//!
//! 1. **Worker indices** inside `install` are `Some`, dense in
//!    `0..num_threads`, and stable for the life of the pool — the
//!    sharded `Tracer` and `Worklist::with_shards` route on them.
//! 2. **Nested scopes** complete (work-helping, not thread-blocking),
//!    even on a 1-thread pool.
//! 3. **Panic isolation**: a panicking task propagates to the caller
//!    *after* its siblings drain, and the pool stays usable — the
//!    engines' `catch_unwind`-per-chunk design depends on both halves.
//! 4. **Deterministic reduction** (std-pool only): chunk results are
//!    combined in chunk order, so float sums are bit-identical from run
//!    to run at any fixed thread count.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use ipregel_par::prelude::*;
use ipregel_par::{current_thread_index, ThreadPoolBuilder};

#[test]
fn install_exposes_dense_stable_worker_indices() {
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    for _round in 0..4 {
        let seen = Mutex::new(BTreeSet::new());
        pool.install(|| {
            (0..1024usize).into_par_iter().for_each(|_| {
                let idx = current_thread_index().expect("par-iter bodies run on pool workers");
                seen.lock().unwrap().insert(idx);
            });
        });
        let seen = seen.into_inner().unwrap();
        assert!(
            seen.iter().all(|&i| i < 3),
            "indices must stay below num_threads: {seen:?}"
        );
        assert!(!seen.is_empty());
    }
}

#[test]
fn nested_scopes_complete_even_on_one_thread() {
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let total = pool.install(|| {
        (0..8u64)
            .into_par_iter()
            .map(|i| {
                // A nested parallel iterator from inside a chunk body:
                // the worker must help-drain instead of deadlocking.
                (0..8u64).into_par_iter().map(|j| i * 8 + j).sum::<u64>()
            })
            .sum::<u64>()
    });
    assert_eq!(total, (0..64).sum());
}

#[test]
fn panic_in_one_task_propagates_and_pool_survives() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            (0..256usize).into_par_iter().for_each(|i| {
                assert!(i != 97, "poisoned vertex 97");
            });
        });
    }));
    let payload = caught.expect_err("the panic must reach the caller");
    // A literal assert! message panics with &'static str, a formatted
    // one with String; the pool must preserve either payload verbatim.
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string payload>".into());
    assert!(msg.contains("poisoned vertex 97"), "payload survives: {msg}");

    // The same pool keeps working afterwards — no poisoned workers, no
    // lost threads.
    let sum = pool.install(|| (0..1000u64).into_par_iter().sum::<u64>());
    assert_eq!(sum, 499_500);
}

// Chunk-order combination is a std-pool guarantee the facade makes
// *stronger* than rayon's (rayon re-associates reductions at runtime):
// for a fixed thread count the chunk plan is fixed, so float sums are
// bit-identical run to run regardless of which worker takes which
// chunk. (Across *different* thread counts the plan itself changes, so
// only approximate equality holds — same as rayon.) Under the `rayon`
// feature this test is compiled out.
#[cfg(not(feature = "rayon"))]
#[test]
fn float_reductions_are_bit_identical_for_a_fixed_thread_count() {
    let values: Vec<f64> = (0..10_000).map(|i| 1.0 / f64::from(i + 1)).collect();
    for threads in [1, 2, 3, 7] {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let runs: Vec<u64> = (0..8)
            .map(|_| pool.install(|| values.par_iter().map(|&v| v * v).sum::<f64>()).to_bits())
            .collect();
        assert!(
            runs.windows(2).all(|w| w[0] == w[1]),
            "chunk-order combining must not depend on worker timing \
             (threads={threads}): {runs:?}"
        );
    }
}
