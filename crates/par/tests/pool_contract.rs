//! The facade contract the workspace's engines rely on, as integration
//! tests against the public API (see docs/INTERNALS.md, "Parallel
//! runtime"):
//!
//! 1. **Worker indices** inside `install` are `Some`, dense in
//!    `0..num_threads`, and stable for the life of the pool — the
//!    sharded `Tracer` and `Worklist::with_shards` route on them.
//! 2. **Nested scopes** complete (work-helping, not thread-blocking),
//!    even on a 1-thread pool.
//! 3. **Panic isolation**: a panicking task propagates to the caller
//!    *after* its siblings drain, and the pool stays usable — the
//!    engines' `catch_unwind`-per-chunk design depends on both halves.
//! 4. **Deterministic reduction** (std-pool only): chunk results are
//!    combined in chunk order, so float sums are bit-identical from run
//!    to run at any fixed thread count.
//!
//! The second half of the file is the steal-hardened battery (std-pool
//! only): the same contracts with work-stealing *forced* — adversarial
//! sleeps push chunks onto thieves, panics land in stolen chunks, and
//! fan-out past the deque bound spills through the overflow injector —
//! because every guarantee above must be independent of which worker a
//! chunk lands on.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use ipregel_par::prelude::*;
use ipregel_par::{current_thread_index, ThreadPoolBuilder};

#[test]
fn install_exposes_dense_stable_worker_indices() {
    let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
    for _round in 0..4 {
        let seen = Mutex::new(BTreeSet::new());
        pool.install(|| {
            (0..1024usize).into_par_iter().for_each(|_| {
                let idx = current_thread_index().expect("par-iter bodies run on pool workers");
                seen.lock().unwrap().insert(idx);
            });
        });
        let seen = seen.into_inner().unwrap();
        assert!(
            seen.iter().all(|&i| i < 3),
            "indices must stay below num_threads: {seen:?}"
        );
        assert!(!seen.is_empty());
    }
}

#[test]
fn nested_scopes_complete_even_on_one_thread() {
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let total = pool.install(|| {
        (0..8u64)
            .into_par_iter()
            .map(|i| {
                // A nested parallel iterator from inside a chunk body:
                // the worker must help-drain instead of deadlocking.
                (0..8u64).into_par_iter().map(|j| i * 8 + j).sum::<u64>()
            })
            .sum::<u64>()
    });
    assert_eq!(total, (0..64).sum());
}

#[test]
fn panic_in_one_task_propagates_and_pool_survives() {
    let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            (0..256usize).into_par_iter().for_each(|i| {
                assert!(i != 97, "poisoned vertex 97");
            });
        });
    }));
    let payload = caught.expect_err("the panic must reach the caller");
    // A literal assert! message panics with &'static str, a formatted
    // one with String; the pool must preserve either payload verbatim.
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string payload>".into());
    assert!(msg.contains("poisoned vertex 97"), "payload survives: {msg}");

    // The same pool keeps working afterwards — no poisoned workers, no
    // lost threads.
    let sum = pool.install(|| (0..1000u64).into_par_iter().sum::<u64>());
    assert_eq!(sum, 499_500);
}

// Chunk-order combination is a std-pool guarantee the facade makes
// *stronger* than rayon's (rayon re-associates reductions at runtime):
// for a fixed thread count the chunk plan is fixed, so float sums are
// bit-identical run to run regardless of which worker takes which
// chunk. (Across *different* thread counts the plan itself changes, so
// only approximate equality holds — same as rayon.) Under the `rayon`
// feature this test is compiled out.
#[cfg(not(feature = "rayon"))]
#[test]
fn float_reductions_are_bit_identical_for_a_fixed_thread_count() {
    let values: Vec<f64> = (0..10_000).map(|i| 1.0 / f64::from(i + 1)).collect();
    for threads in [1, 2, 3, 7] {
        let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
        let runs: Vec<u64> = (0..8)
            .map(|_| pool.install(|| values.par_iter().map(|&v| v * v).sum::<f64>()).to_bits())
            .collect();
        assert!(
            runs.windows(2).all(|w| w[0] == w[1]),
            "chunk-order combining must not depend on worker timing \
             (threads={threads}): {runs:?}"
        );
    }
}

// ---------------------------------------------------------------------
// The steal-hardened battery: the contracts above with stealing forced.
// ---------------------------------------------------------------------

/// Bit-identical float reduction with stealing *provoked*: the early
/// chunks sleep, so the spawning worker stalls on them (thieves take
/// the front of its deque; the owner pops the back) and later chunks
/// migrate to whichever worker is free. The reduction still folds the
/// chunk slots in chunk order on the caller, so the adversarial run's
/// sum must match the undisturbed run bit for bit — and the steal
/// counters prove the schedules actually differed.
#[cfg(not(feature = "rayon"))]
#[test]
fn float_reduction_bits_survive_forced_stealing() {
    let values: Vec<f64> = (0..10_000).map(|i| 1.0 / f64::from(i + 1)).collect();
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let calm = pool.install(|| values.par_iter().map(|&v| v * v).sum::<f64>()).to_bits();
    let before = pool.install(ipregel_par::current_pool_stats);
    for _ in 0..4 {
        let adversarial = pool
            .install(|| {
                values
                    .par_iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        // One nap near the start of each early chunk
                        // (10 000 items / 4 threads / 8 chunks-per-
                        // thread ≈ 313-item chunks): the executing
                        // worker blocks, everyone else steals on.
                        if i < 2_000 && i % 313 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(500));
                        }
                        v * v
                    })
                    .sum::<f64>()
            })
            .to_bits();
        assert_eq!(
            adversarial, calm,
            "stealing moved chunks between workers, so bit-equality \
             proves the reduction order never followed execution order"
        );
    }
    let after = pool.install(ipregel_par::current_pool_stats);
    assert!(
        after.steals > before.steals,
        "the adversarial runs must actually have forced steals: {after:?}"
    );
}

/// Worker indices stay dense and in-range while thieves are actively
/// draining a spawner: with every task asleep most of its lifetime, the
/// whole pool must join in (a worker that never shows up would mean
/// wakeups got lost), and no task may ever observe an out-of-range or
/// unstable index mid-execution.
#[cfg(not(feature = "rayon"))]
#[test]
fn worker_indices_stay_dense_under_active_steals() {
    const THREADS: usize = 4;
    let pool = ThreadPoolBuilder::new().num_threads(THREADS).build().unwrap();
    let before = pool.install(ipregel_par::current_pool_stats);
    let seen = Mutex::new(BTreeSet::new());
    pool.install(|| {
        ipregel_par::scope(|s| {
            for _ in 0..64 {
                let seen = &seen;
                s.spawn(move |_| {
                    let idx = current_thread_index().expect("tasks run on pool workers");
                    assert!(idx < THREADS, "index past the pool: {idx}");
                    // Sleeping yields the CPU, so even a single-core CI
                    // box overlaps the naps and every worker gets to
                    // steal its share.
                    std::thread::sleep(std::time::Duration::from_micros(500));
                    assert_eq!(
                        current_thread_index(),
                        Some(idx),
                        "a task must not migrate between workers mid-flight"
                    );
                    seen.lock().unwrap().insert(idx);
                });
            }
        });
    });
    let after = pool.install(ipregel_par::current_pool_stats);
    let seen = seen.into_inner().unwrap();
    assert_eq!(
        seen,
        (0..THREADS).collect::<BTreeSet<_>>(),
        "64 sleepy tasks must pull every worker in"
    );
    assert!(after.steals > before.steals, "the fan-out must have been stolen from: {after:?}");
}

/// A panic inside a *stolen* chunk: the payload must reach the scope
/// caller intact (blaming the poisoned task, not an innocent sibling),
/// siblings must drain, and the pool must stay usable. The panicking
/// task sits at the front of the spawner's deque — exactly where a
/// thief takes from — while the spawner itself works the back.
#[cfg(not(feature = "rayon"))]
#[test]
fn panic_in_a_stolen_chunk_blames_that_chunk_and_pool_survives() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
    let before = pool.install(ipregel_par::current_pool_stats);
    let ran_on = AtomicUsize::new(usize::MAX);
    let survivors = AtomicUsize::new(0);
    let caught = catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            ipregel_par::scope(|s| {
                // First spawn = front of the deque = first steal target.
                let ran_on = &ran_on;
                s.spawn(move |_| {
                    ran_on.store(current_thread_index().unwrap(), Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(500));
                    panic!("chunk 0 poisoned");
                });
                for _ in 0..63 {
                    let survivors = &survivors;
                    s.spawn(move |_| {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        survivors.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        });
    }));
    let payload = caught.expect_err("the stolen chunk's panic must reach the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string payload>".into());
    assert!(msg.contains("chunk 0 poisoned"), "blame lands on the right chunk: {msg}");
    assert_eq!(
        survivors.load(Ordering::Relaxed),
        63,
        "every sibling drains before the panic propagates"
    );
    assert_ne!(ran_on.load(Ordering::Relaxed), usize::MAX, "the poisoned chunk did run");
    let after = pool.install(ipregel_par::current_pool_stats);
    assert!(after.steals > before.steals, "the region must have exercised stealing: {after:?}");
    // Same pool, next superstep: nothing leaked, nobody died.
    let sum = pool.install(|| (0..1000u64).into_par_iter().sum::<u64>());
    assert_eq!(sum, 499_500);
}

/// Nested scopes on a one-thread pool whose deque has spilled into the
/// overflow injector: the lone worker must help-drain its own deque
/// *and* the injector while blocked in the outer scope, or the fan-out
/// deadlocks. Fan-out is sized well past the per-worker deque bound
/// (256) to force the spill.
#[cfg(not(feature = "rayon"))]
#[test]
fn nested_scopes_on_one_thread_drain_the_overflow_injector() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
    let before = pool.install(ipregel_par::current_pool_stats);
    let counter = AtomicUsize::new(0);
    pool.install(|| {
        ipregel_par::scope(|s| {
            for _ in 0..320 {
                let counter = &counter;
                s.spawn(move |_| {
                    // A nested scope from inside a task while the outer
                    // fan-out still clogs deque + injector.
                    ipregel_par::scope(|inner| {
                        for _ in 0..2 {
                            inner.spawn(move |_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    });
    let after = pool.install(ipregel_par::current_pool_stats);
    assert_eq!(counter.load(Ordering::Relaxed), 320 * 3, "every nested task completed");
    assert!(
        after.overflow > before.overflow,
        "960 tasks through a 256-slot deque must spill to the injector: {after:?}"
    );
}
