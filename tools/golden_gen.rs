//! Regenerates the committed golden expectations under `tests/fixtures/`.
//!
//! Deliberately `std`-only and independent of the workspace crates: the
//! expectations are computed from first principles (power iteration, BFS,
//! min-label fixpoint) rather than by running the engines, so
//! `tests/golden.rs` is a genuine cross-check and not a snapshot of the
//! implementation's own output.
//!
//! Usage (from the repository root):
//!
//! ```text
//! rustc --edition 2021 -O tools/golden_gen.rs -o /tmp/golden_gen && /tmp/golden_gen
//! ```
//!
//! The PageRank expectation is written with 17 significant digits so the
//! `f64` round-trips exactly; `tests/golden.rs` compares with a 1e-9
//! relative tolerance because floating-point combination order differs
//! between engines.

use std::collections::BTreeMap;
use std::fs;

/// PageRank parameters mirrored by `tests/golden.rs`.
const ROUNDS: usize = 20;
const DAMPING: f64 = 0.85;
/// SSSP source in fixture B, mirrored by `tests/golden.rs`.
const SSSP_SOURCE: u32 = 2;

fn parse_edges(path: &str) -> Vec<(u32, u32)> {
    let text = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let mut edges = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') || t.starts_with("//") {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u32 = it.next().unwrap().parse().unwrap();
        let v: u32 = it.next().unwrap().parse().unwrap();
        edges.push((u, v));
    }
    edges
}

fn vertex_ids(edges: &[(u32, u32)]) -> Vec<u32> {
    let mut ids: Vec<u32> = edges.iter().flat_map(|&(u, v)| [u, v]).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// Power iteration matching the vertex program of Figure 6: superstep 0
/// sets every value to 1/n, each later superstep computes
/// `0.15/n + 0.85 * Σ incoming(value/outdeg)`, and vertices without
/// out-edges contribute nothing (no dangling redistribution).
fn pagerank(edges: &[(u32, u32)], ids: &[u32]) -> BTreeMap<u32, f64> {
    let index: BTreeMap<u32, usize> = ids.iter().enumerate().map(|(i, &id)| (id, i)).collect();
    let n = ids.len();
    let mut outdeg = vec![0u64; n];
    for &(u, _) in edges {
        outdeg[index[&u]] += 1;
    }
    let mut p = vec![1.0 / n as f64; n];
    for _ in 0..ROUNDS {
        let mut next = vec![(1.0 - DAMPING) / n as f64; n];
        for &(u, v) in edges {
            let ui = index[&u];
            next[index[&v]] += DAMPING * p[ui] / outdeg[ui] as f64;
        }
        p = next;
    }
    ids.iter().map(|&id| (id, p[index[&id]])).collect()
}

/// Min-label fixpoint: label(v) = min id over vertices with a directed
/// path to v, plus v itself. On a symmetric graph this is the component
/// minimum.
fn hashmin(edges: &[(u32, u32)], ids: &[u32]) -> BTreeMap<u32, u32> {
    let mut label: BTreeMap<u32, u32> = ids.iter().map(|&id| (id, id)).collect();
    loop {
        let mut changed = false;
        for &(u, v) in edges {
            let lu = label[&u];
            if lu < label[&v] {
                label.insert(v, lu);
                changed = true;
            }
        }
        if !changed {
            return label;
        }
    }
}

/// BFS levels from `SSSP_SOURCE` along directed edges; unreachable
/// vertices keep `u32::MAX`, matching the Figure 5 initial value.
fn sssp(edges: &[(u32, u32)], ids: &[u32]) -> BTreeMap<u32, u32> {
    let mut dist: BTreeMap<u32, u32> = ids.iter().map(|&id| (id, u32::MAX)).collect();
    dist.insert(SSSP_SOURCE, 0);
    let mut frontier = vec![SSSP_SOURCE];
    let mut adj: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &(u, v) in edges {
        adj.entry(u).or_default().push(v);
    }
    while let Some(next) = {
        let mut next = Vec::new();
        for &u in &frontier {
            let d = dist[&u];
            for &v in adj.get(&u).map(Vec::as_slice).unwrap_or(&[]) {
                if dist[&v] == u32::MAX {
                    dist.insert(v, d + 1);
                    next.push(v);
                }
            }
        }
        if next.is_empty() { None } else { Some(next) }
    } {
        frontier = next;
    }
    dist
}

fn write_u32(path: &str, values: &BTreeMap<u32, u32>) {
    let body: String = values.iter().map(|(id, v)| format!("{id} {v}\n")).collect();
    fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

fn write_f64(path: &str, values: &BTreeMap<u32, f64>) {
    let body: String = values.iter().map(|(id, v)| format!("{id} {v:.17e}\n")).collect();
    fs::write(path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

fn main() {
    let a = parse_edges("tests/fixtures/fixture_a.txt");
    let a_ids = vertex_ids(&a);
    assert_eq!(a_ids.len(), 24, "fixture A must have 24 vertices");
    write_f64("tests/fixtures/fixture_a.pagerank.expected", &pagerank(&a, &a_ids));
    write_u32("tests/fixtures/fixture_a.hashmin.expected", &hashmin(&a, &a_ids));

    let b = parse_edges("tests/fixtures/fixture_b.txt");
    let b_ids = vertex_ids(&b);
    assert_eq!(b_ids.len(), 12, "fixture B must have 12 vertices");
    write_u32("tests/fixtures/fixture_b.sssp.expected", &sssp(&b, &b_ids));
}
