//! Unsafe-confinement audit.
//!
//! Walks every `.rs` file in the repository and fails if the token
//! `unsafe` appears outside the allowlisted modules below. The allowlist
//! is the project's unsafe boundary: each entry must carry a module-level
//! safety argument and a checker that exercises it (loom model,
//! `check-disjoint` tags, Miri, TSan — see docs/INTERNALS.md, "Safety
//! model"). It also verifies that the crates declared unsafe-free really
//! carry `#![forbid(unsafe_code)]`, so the boundary cannot silently grow.
//!
//! Standard library only — CI compiles and runs it directly:
//!
//! ```sh
//! rustc --edition 2021 -O tools/unsafe_audit.rs -o /tmp/unsafe_audit
//! /tmp/unsafe_audit /path/to/repo   # defaults to the current directory
//! ```
//!
//! Token detection strips comments, string/char literals, and raw strings
//! with a small scanner, so `// unsafe` in prose or `"unsafe"` in a
//! message does not trip the audit, while `unsafe fn`, `unsafe impl`,
//! and `unsafe {}` anywhere in code do.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Files permitted to contain the `unsafe` token. Keep in sync with
/// docs/INTERNALS.md ("Safety model") — every entry there must justify
/// its presence here and name the checker that covers it.
const ALLOWLIST: &[&str] = &[
    // The confined unsafe core.
    // The in-tree thread pool: scope-lifetime erasure for queued jobs
    // (sound because scope/install block until the latch drains) and
    // the worker-TLS pointer read. Covered by crates/par/tests/
    // pool_contract.rs and the crate's unit suite.
    "crates/par/src/pool.rs",
    "crates/core/src/sync.rs",
    "crates/core/src/sync_cell.rs",
    "crates/core/src/mailbox/spin.rs",
    "crates/core/src/selection.rs",
    "crates/core/src/engine/push.rs",
    "crates/core/src/engine/pull.rs",
    // Baseline simulators reusing SharedSlice under the same discipline.
    "crates/femtograph/src/lib.rs",
    "crates/graphd/src/lib.rs",
    "crates/pregelplus/src/engine.rs",
    // Test suites that exercise the unsafe contracts directly.
    "crates/core/tests/loom.rs",
];

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
const FORBID_ROOTS: &[&str] = &[
    "crates/graph/src/lib.rs",
    "crates/apps/src/lib.rs",
    "crates/bench/src/lib.rs",
    "crates/cli/src/lib.rs",
    "crates/cli/src/main.rs",
    "crates/memmodel/src/lib.rs",
    "src/lib.rs",
];

/// Directories searched for `.rs` sources.
const SEARCH_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "tools"];

fn main() -> ExitCode {
    let repo = env::args().nth(1).map_or_else(|| PathBuf::from("."), PathBuf::from);
    let mut files = Vec::new();
    for root in SEARCH_ROOTS {
        collect_rs_files(&repo.join(root), &mut files);
    }
    files.sort();

    let mut failures = 0u32;
    for path in &files {
        let rel = path
            .strip_prefix(&repo)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(source) = fs::read_to_string(path) else {
            eprintln!("unsafe_audit: cannot read {rel}");
            failures += 1;
            continue;
        };
        let lines = unsafe_token_lines(&source);
        if !lines.is_empty() && !ALLOWLIST.contains(&rel.as_str()) {
            failures += 1;
            eprintln!(
                "unsafe_audit: `unsafe` outside the allowlisted boundary in {rel} (lines {lines:?})"
            );
            eprintln!(
                "  Either remove the unsafe code or extend the boundary: add the file to \
                 tools/unsafe_audit.rs ALLOWLIST *and* document its invariant + checker in \
                 docs/INTERNALS.md."
            );
        }
    }

    for rel in FORBID_ROOTS {
        let path = repo.join(rel);
        match fs::read_to_string(&path) {
            Ok(src) if src.contains("#![forbid(unsafe_code)]") => {}
            Ok(_) => {
                failures += 1;
                eprintln!("unsafe_audit: {rel} lost its #![forbid(unsafe_code)]");
            }
            Err(_) => {
                failures += 1;
                eprintln!("unsafe_audit: expected crate root {rel} is missing");
            }
        }
    }

    if failures == 0 {
        println!(
            "unsafe_audit: OK — {} files scanned, unsafe confined to {} allowlisted modules",
            files.len(),
            ALLOWLIST.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("unsafe_audit: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target/` never appears under the search roots, but guard
            // anyway in case a nested crate gains one.
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lines (1-based) on which the `unsafe` token occurs in real code —
/// comments, strings, char literals, and raw strings are skipped.
fn unsafe_token_lines(source: &str) -> Vec<usize> {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }

    let bytes = source.as_bytes();
    let mut state = State::Code;
    let mut line = 1usize;
    let mut lines = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    i += 1;
                } else if b == b'r' && matches!(bytes.get(i + 1), Some(b'"' | b'#')) {
                    // Raw string r"..." / r#"..."# (also br variants land
                    // here via the 'b' falling through as an ident byte —
                    // close enough for an audit: we only must not *miss*
                    // code tokens, and raw strings cannot contain code).
                    let mut hashes = 0usize;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        i = j + 1;
                    } else {
                        i += 1; // `r#ident` raw identifier — plain code
                    }
                } else if b == b'\'' {
                    // Distinguish char literals from lifetimes: a lifetime
                    // is `'ident` not followed by a closing quote.
                    let is_lifetime = bytes
                        .get(i + 1)
                        .is_some_and(|c| c.is_ascii_alphabetic() || *c == b'_')
                        && bytes.get(i + 2) != Some(&b'\'');
                    if is_lifetime {
                        i += 1;
                    } else {
                        state = State::Char;
                        i += 1;
                    }
                } else if source[i..].starts_with("unsafe")
                    && !is_ident_byte(bytes.get(i.wrapping_sub(1)).copied(), i > 0)
                    && !is_ident_byte(bytes.get(i + 6).copied(), true)
                {
                    lines.push(line);
                    i += 6;
                } else {
                    i += 1;
                }
            }
            State::LineComment => i += 1,
            State::BlockComment(depth) => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    i += 2;
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' {
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' && bytes[i + 1..].iter().take(hashes).filter(|c| **c == b'#').count() == hashes
                {
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            State::Char => {
                if b == b'\\' {
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    lines
}

fn is_ident_byte(b: Option<u8>, exists: bool) -> bool {
    if !exists {
        return false;
    }
    b.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
}
