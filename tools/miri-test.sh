#!/usr/bin/env bash
# Run the curated Miri subset: the ipregel core library suite plus the
# sequential integration tests that exercise the unsafe boundary.
#
# Curation strategy: instead of maintaining a name list that rots, every
# concurrency-heavy test in the core crate shrinks itself under
# `cfg!(miri)` (fewer threads, fewer iterations), which makes the whole
# `-p ipregel` suite interpretable in CI time. Suites that need real
# parallel throughput (tests/stress.rs) or wall-clock behaviour stay
# outside Miri and are covered by ThreadSanitizer instead (see
# .github/workflows/ci.yml and docs/INTERNALS.md).
#
# Requires: rustup toolchain nightly + `rustup +nightly component add miri`.
set -euo pipefail
cd "$(dirname "$0")/.."

# - disable-isolation: the engines time supersteps with Instant::now().
# - strict-provenance: SharedSlice is pointer-based; catch any
#   int-pointer casts sneaking back in.
export MIRIFLAGS="${MIRIFLAGS:--Zmiri-disable-isolation -Zmiri-strict-provenance}"

# Core crate: unit tests (sync shim, SharedSlice, mailboxes, worklist)
# under both feature configurations of the borrow-tag checker, then the
# sequential differential suite.
cargo +nightly miri test -p ipregel --lib
cargo +nightly miri test -p ipregel --lib --features check-disjoint
cargo +nightly miri test -p ipregel --test mailbox_equivalence
